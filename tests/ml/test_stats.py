"""Tests for the small statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.stats import (
    argmin_with_ties,
    geometric_mean,
    harmonic_mean,
    ks_statistic,
    population_stability_index,
    quantile_bin_edges,
    weighted_mean,
)


class TestArgminWithTies:
    def test_single_minimum(self):
        assert argmin_with_ties([3.0, 1.0, 2.0]) == [1]

    def test_ties_all_returned(self):
        assert argmin_with_ties([2.0, 1.0, 1.0, 5.0]) == [1, 2]

    def test_tolerance(self):
        assert argmin_with_ties([1.0, 1.0 + 1e-13], tolerance=1e-12) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            argmin_with_ties([])


class TestWeightedMean:
    def test_equal_weights_is_plain_mean(self):
        assert weighted_mean([1.0, 2.0, 3.0], [1, 1, 1]) == pytest.approx(2.0)

    def test_weights_shift_result(self):
        assert weighted_mean([0.0, 10.0], [3, 1]) == pytest.approx(2.5)

    def test_errors(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


class TestMeans:
    def test_geometric_mean_of_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 1.0 / 3.0]) == pytest.approx(0.5)

    def test_errors_on_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30))
def test_property_mean_ordering(values):
    """Property: harmonic mean <= geometric mean <= arithmetic mean."""
    geometric = geometric_mean(values)
    harmonic = harmonic_mean(values)
    arithmetic = float(np.mean(values))
    assert harmonic <= geometric * (1 + 1e-9)
    assert geometric <= arithmetic * (1 + 1e-9)


class TestQuantileBinEdges:
    def test_interior_edges_for_uniform_grid(self):
        edges = quantile_bin_edges(np.arange(100.0), bins=4)
        assert len(edges) == 3
        assert np.all(np.diff(edges) > 0)

    def test_constant_reference_keeps_single_edge(self):
        edges = quantile_bin_edges([5.0] * 20, bins=10)
        assert edges.tolist() == [5.0]

    def test_errors(self):
        with pytest.raises(ValueError):
            quantile_bin_edges([], bins=4)
        with pytest.raises(ValueError):
            quantile_bin_edges([1.0, 2.0], bins=1)


class TestPopulationStabilityIndex:
    def test_identical_samples_score_zero(self):
        reference = np.linspace(0.0, 1.0, 200)
        assert population_stability_index(reference, reference) == pytest.approx(0.0)

    def test_shifted_sample_scores_high(self):
        rng = np.random.default_rng(0)
        reference = rng.normal(0.0, 1.0, size=500)
        shifted = rng.normal(4.0, 1.0, size=500)
        assert population_stability_index(reference, shifted) > 1.0

    def test_same_distribution_scores_low(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(0.0, 1.0, size=500)
        live = rng.normal(0.0, 1.0, size=500)
        assert population_stability_index(reference, live) < 0.1

    def test_constant_feature_still_at_constant_reads_zero(self):
        assert population_stability_index([3.0] * 50, [3.0] * 50) == pytest.approx(0.0)

    def test_constant_feature_departing_reads_high(self):
        assert population_stability_index([3.0] * 50, [9.0] * 50) > 1.0

    def test_empty_live_raises(self):
        with pytest.raises(ValueError):
            population_stability_index([1.0, 2.0], [])


class TestKsStatistic:
    def test_identical_samples_score_zero(self):
        sample = np.linspace(0.0, 1.0, 100)
        assert ks_statistic(sample, sample) == pytest.approx(0.0)

    def test_disjoint_supports_score_one(self):
        assert ks_statistic([1.0, 2.0, 3.0], [10.0, 11.0]) == pytest.approx(1.0)

    def test_known_half_overlap(self):
        # ECDFs diverge most at 2.5: 1.0 vs 0.5.
        assert ks_statistic([1.0, 2.0], [2.0, 3.0]) == pytest.approx(0.5)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])


@settings(max_examples=50, deadline=None)
@given(
    reference=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=60),
    live=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
)
def test_property_drift_stats_ranges(reference, live):
    """PSI is non-negative and finite; KS lives in [0, 1]."""
    psi = population_stability_index(reference, live)
    assert np.isfinite(psi)
    assert psi >= 0.0
    ks = ks_statistic(reference, live)
    assert 0.0 <= ks <= 1.0


@settings(max_examples=50, deadline=None)
@given(sample=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_property_drift_stats_identity(sample):
    """Any sample compared against itself shows no drift."""
    assert population_stability_index(sample, sample) == pytest.approx(0.0, abs=1e-9)
    assert ks_statistic(sample, sample) == 0.0
