"""Hypothesis parity: batched classifier predictions vs row-at-a-time.

The tentpole's second layer scores whole chunks per call: the discretized
naive Bayes assigns regions with one ``searchsorted`` over all rows and
accumulates posteriors as a log-space matrix op, the decision tree descends
the flattened tree with array gathers, and k-means assigns clusters with one
distance matrix.  Each batched path must reproduce its scalar counterpart
bit for bit -- including NaN observations and degenerate (constant)
feature columns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.kmeans import KMeans, assign_clusters
from repro.ml.naive_bayes import DiscretizedNaiveBayes

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def training_data(draw, max_features=4, max_classes=4):
    """A small (X, y) with occasional constant/duplicated columns."""
    n_samples = draw(st.integers(min_value=3, max_value=24))
    n_features = draw(st.integers(min_value=1, max_value=max_features))
    n_classes = draw(st.integers(min_value=1, max_value=max_classes))
    rows = draw(
        st.lists(
            st.lists(finite, min_size=n_features, max_size=n_features),
            min_size=n_samples,
            max_size=n_samples,
        )
    )
    X = np.asarray(rows, dtype=float)
    if draw(st.booleans()):
        X[:, draw(st.integers(0, n_features - 1))] = draw(finite)  # degenerate
    y = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_classes - 1),
                min_size=n_samples,
                max_size=n_samples,
            )
        ),
        dtype=int,
    )
    return X, y


@st.composite
def query_rows(draw, n_features):
    """Query matrix rows, with NaN cells mixed in."""
    n_queries = draw(st.integers(min_value=1, max_value=12))
    cell = st.one_of(finite, st.just(float("nan")))
    rows = draw(
        st.lists(
            st.lists(cell, min_size=n_features, max_size=n_features),
            min_size=n_queries,
            max_size=n_queries,
        )
    )
    return np.asarray(rows, dtype=float)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_naive_bayes_posterior_batch_matches_scalar(data):
    X, y = data.draw(training_data())
    model = DiscretizedNaiveBayes(n_regions=4).fit(X, y)
    queries = data.draw(query_rows(X.shape[1]))
    batched = model.posterior_batch(queries)
    for row in range(queries.shape[0]):
        scalar = model.posterior(list(enumerate(queries[row])))
        np.testing.assert_array_equal(batched[row], scalar)
    predictions = model.predict(queries)
    np.testing.assert_array_equal(predictions, np.argmax(batched, axis=1))


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_naive_bayes_feature_subset_batch_matches_scalar(data):
    X, y = data.draw(training_data())
    model = DiscretizedNaiveBayes(n_regions=3).fit(X, y)
    n_features = X.shape[1]
    subset = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_features - 1),
            min_size=1,
            max_size=n_features,
            unique=True,
        )
    )
    queries = data.draw(query_rows(len(subset)))
    batched = model.posterior_batch(queries, features=subset)
    for row in range(queries.shape[0]):
        scalar = model.posterior(list(zip(subset, queries[row])))
        np.testing.assert_array_equal(batched[row], scalar)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_decision_tree_batch_predict_matches_predict_one(data):
    X, y = data.draw(training_data())
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    queries = data.draw(query_rows(X.shape[1]))
    batched = tree.predict(queries)
    scalar = np.array([tree.predict_one(row) for row in queries], dtype=int)
    np.testing.assert_array_equal(batched, scalar)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_kmeans_batch_assignment_matches_per_row(data):
    X, _ = data.draw(training_data(max_features=3))
    result = KMeans(n_clusters=3, random_state=0, n_init=1).fit(X)
    queries = np.asarray(
        data.draw(
            st.lists(
                st.lists(finite, min_size=X.shape[1], max_size=X.shape[1]),
                min_size=1,
                max_size=10,
            )
        ),
        dtype=float,
    )
    batched = result.predict(queries)
    per_row = np.array(
        [assign_clusters(row.reshape(1, -1), result.centroids)[0] for row in queries],
        dtype=int,
    )
    np.testing.assert_array_equal(batched, per_row)
