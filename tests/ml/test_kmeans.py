"""Tests for the K-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kmeans import KMeans


def make_blobs(n_per_cluster=30, centers=((0, 0), (10, 10), (-10, 10)), spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(rng.normal(center, spread, size=(n_per_cluster, 2)))
        labels.extend([index] * n_per_cluster)
    return np.vstack(points), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, truth = make_blobs()
        result = KMeans(n_clusters=3, random_state=0).fit(X)
        # Every true cluster should map to exactly one k-means cluster.
        mapping = {}
        for true_label in range(3):
            assigned = result.labels[truth == true_label]
            values, counts = np.unique(assigned, return_counts=True)
            mapping[true_label] = values[np.argmax(counts)]
            assert counts.max() / counts.sum() > 0.95
        assert len(set(mapping.values())) == 3

    def test_labels_shape_and_range(self):
        X, _ = make_blobs()
        result = KMeans(n_clusters=4, random_state=1).fit(X)
        assert result.labels.shape == (X.shape[0],)
        assert result.labels.min() >= 0
        assert result.labels.max() < 4

    def test_inertia_decreases_with_more_clusters(self):
        X, _ = make_blobs(spread=2.0)
        inertia_small = KMeans(n_clusters=2, random_state=0).fit(X).inertia
        inertia_large = KMeans(n_clusters=8, random_state=0).fit(X).inertia
        assert inertia_large < inertia_small

    def test_k_reduced_for_duplicate_points(self):
        X = np.zeros((10, 3))
        result = KMeans(n_clusters=5, random_state=0).fit(X)
        assert result.k == 1
        assert result.inertia == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        X, _ = make_blobs(seed=3)
        first = KMeans(n_clusters=3, random_state=42).fit(X)
        second = KMeans(n_clusters=3, random_state=42).fit(X)
        assert np.array_equal(first.labels, second.labels)
        assert np.allclose(first.centroids, second.centroids)

    def test_rejects_empty_and_bad_shapes(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.empty((0, 2)))
        with pytest.raises(ValueError):
            KMeans(n_clusters=2).fit(np.ones(5))

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, max_iterations=0)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, n_init=0)

    def test_single_cluster(self):
        X, _ = make_blobs()
        result = KMeans(n_clusters=1, random_state=0).fit(X)
        assert result.k == 1
        assert np.allclose(result.centroids[0], X.mean(axis=0))


class TestKMeansEdgeCases:
    def test_more_clusters_than_points(self):
        """K > n_points must degrade gracefully to one cluster per point."""
        X = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 0.0]])
        result = KMeans(n_clusters=10, random_state=0).fit(X)
        assert result.k == 3
        assert result.labels.shape == (3,)
        assert len(set(result.labels.tolist())) == 3
        assert result.inertia == pytest.approx(0.0)

    def test_more_clusters_than_distinct_points(self):
        """Duplicates cap the effective K at the number of distinct points."""
        X = np.array([[1.0, 1.0]] * 4 + [[2.0, 2.0]] * 4)
        result = KMeans(n_clusters=5, random_state=0).fit(X)
        assert result.k == 2
        assert result.inertia == pytest.approx(0.0)
        # Duplicates land in the same cluster as their twin.
        assert len(set(result.labels[:4].tolist())) == 1
        assert len(set(result.labels[4:].tolist())) == 1

    def test_duplicates_do_not_break_kmeans_plus_plus(self):
        """Heavy duplication exercises the total<=0 branch of the seeding."""
        X = np.vstack([np.full((20, 2), 1.0), np.full((20, 2), -1.0)])
        result = KMeans(n_clusters=2, random_state=3).fit(X)
        centroids = np.sort(result.centroids[:, 0])
        assert np.allclose(centroids, [-1.0, 1.0])

    def test_single_point(self):
        X = np.array([[4.0, 2.0]])
        result = KMeans(n_clusters=3, random_state=0).fit(X)
        assert result.k == 1
        assert np.allclose(result.centroids[0], [4.0, 2.0])


@settings(max_examples=25, deadline=None)
@given(
    n_points=st.integers(5, 60),
    n_features=st.integers(1, 4),
    k=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_property_every_point_assigned_to_nearest_centroid(n_points, n_features, k, seed):
    """Property: the final assignment is consistent with the final centroids."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_points, n_features))
    result = KMeans(n_clusters=k, random_state=seed).fit(X)
    distances = ((X[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
    nearest = distances.min(axis=1)
    chosen = distances[np.arange(n_points), result.labels]
    assert np.allclose(chosen, nearest, atol=1e-9)
