"""Tests for the discretized naive-Bayes model."""

import numpy as np
import pytest

from repro.ml.naive_bayes import DiscretizedNaiveBayes


def make_dataset(n=400, seed=0):
    """Two classes separated on feature 0; feature 1 is noise."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    X = np.column_stack([y * 4.0 + rng.normal(size=n), rng.normal(size=n)])
    return X, y


class TestDiscretizedNaiveBayes:
    def test_predicts_separable_classes(self):
        X, y = make_dataset()
        model = DiscretizedNaiveBayes(n_regions=8).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_posterior_sums_to_one(self):
        X, y = make_dataset()
        model = DiscretizedNaiveBayes().fit(X, y)
        posterior = model.posterior([(0, 3.0), (1, 0.0)])
        assert posterior.shape == (2,)
        assert posterior.sum() == pytest.approx(1.0)

    def test_empty_observation_returns_prior(self):
        X, y = make_dataset()
        model = DiscretizedNaiveBayes().fit(X, y)
        prior = np.exp(model.log_prior())
        assert np.allclose(model.posterior([]), prior / prior.sum())

    def test_informative_feature_sharpens_posterior(self):
        X, y = make_dataset()
        model = DiscretizedNaiveBayes().fit(X, y)
        vague = model.posterior([(1, 0.0)]).max()
        informed = model.posterior([(1, 0.0), (0, 4.5)]).max()
        assert informed > vague

    def test_region_of_monotone(self):
        X, y = make_dataset()
        model = DiscretizedNaiveBayes(n_regions=6).fit(X, y)
        regions = [model.region_of(0, value) for value in (-10.0, 0.0, 2.0, 10.0)]
        assert regions == sorted(regions)

    def test_imbalanced_priors_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 1))
        y = np.zeros(100, dtype=int)
        y[:5] = 1
        model = DiscretizedNaiveBayes().fit(X, y)
        prior = np.exp(model.log_prior())
        assert prior[0] > prior[1]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DiscretizedNaiveBayes().posterior([(0, 1.0)])

    def test_bad_args(self):
        with pytest.raises(ValueError):
            DiscretizedNaiveBayes(n_regions=1)
        with pytest.raises(ValueError):
            DiscretizedNaiveBayes(smoothing=0.0)
        with pytest.raises(ValueError):
            DiscretizedNaiveBayes().fit(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        y = (np.arange(50) > 25).astype(int)
        model = DiscretizedNaiveBayes().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9
