"""Tests for train/test splitting and stratified k-fold."""

import numpy as np
import pytest

from repro.ml.crossval import StratifiedKFold, cross_val_accuracy, train_test_split
from repro.ml.decision_tree import DecisionTreeClassifier


class TestTrainTestSplit:
    def test_partition_is_disjoint_and_complete(self):
        train, test = train_test_split(100, test_fraction=0.5, random_state=0)
        combined = np.concatenate([train, test])
        assert len(set(combined.tolist())) == 100
        assert set(combined.tolist()) == set(range(100))

    def test_fraction_respected(self):
        train, test = train_test_split(100, test_fraction=0.25, random_state=0)
        assert len(test) == 25
        assert len(train) == 75

    def test_deterministic_given_seed(self):
        first = train_test_split(50, random_state=7)
        second = train_test_split(50, random_state=7)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_both_sides_non_empty_for_extreme_fractions(self):
        train, test = train_test_split(10, test_fraction=0.01)
        assert len(test) >= 1 and len(train) >= 1
        train, test = train_test_split(10, test_fraction=0.99)
        assert len(test) <= 9 and len(train) >= 1

    def test_bad_args(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(1)


class TestStratifiedKFold:
    def test_folds_partition_indices(self):
        y = np.array([0] * 20 + [1] * 30)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        seen = []
        for train, test in splitter.split(y):
            assert set(train.tolist()).isdisjoint(test.tolist())
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(50))

    def test_stratification_keeps_class_ratio(self):
        y = np.array([0] * 40 + [1] * 10)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        for _, test in splitter.split(y):
            fraction_ones = np.mean(y[test] == 1)
            assert 0.1 <= fraction_ones <= 0.3

    def test_rare_class_appears_in_some_folds(self):
        y = np.array([0] * 48 + [1] * 2)
        splitter = StratifiedKFold(n_splits=5, random_state=0)
        folds_with_rare = sum(1 for _, test in splitter.split(y) if (y[test] == 1).any())
        assert folds_with_rare == 2

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(n_splits=5).split(np.array([0, 1])))

    def test_bad_n_splits(self):
        with pytest.raises(ValueError):
            StratifiedKFold(n_splits=1)


class TestCrossValAccuracy:
    def test_high_accuracy_on_separable_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        scores = cross_val_accuracy(
            lambda: DecisionTreeClassifier(max_depth=3), X, y, n_splits=5, random_state=0
        )
        assert len(scores) == 5
        assert np.mean(scores) > 0.9
