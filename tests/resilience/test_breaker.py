"""Tests for the serving circuit breaker (injected clock, no sleeping)."""

import pytest

from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(threshold=3, recovery=10.0, half_open_max=1):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        recovery_timeout=recovery,
        half_open_max=half_open_max,
        clock=clock,
    )
    return breaker, clock


def trip(breaker, threshold=3):
    for _ in range(threshold):
        breaker.record_failure()


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_rejects_bad_half_open_max(self):
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max=0)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # streak never hit 3

    def test_opens_at_threshold(self):
        breaker, _ = make(threshold=3)
        trip(breaker)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1


class TestRecovery:
    def test_half_open_after_timeout(self):
        breaker, clock = make(recovery=10.0)
        trip(breaker)
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()

    def test_half_open_admits_bounded_trials(self):
        breaker, clock = make(half_open_max=2)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # third concurrent trial rejected

    def test_trial_success_closes(self):
        breaker, clock = make()
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trial_failure_reopens_and_restarts_clock(self):
        breaker, clock = make(recovery=10.0)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 2
        clock.advance(9.0)
        assert not breaker.allow()  # the recovery clock restarted
        clock.advance(2.0)
        assert breaker.allow()


class TestSnapshot:
    def test_snapshot_fields(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": "closed",
            "consecutive_failures": 1,
            "opened_total": 0,
        }
