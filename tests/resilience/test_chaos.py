"""End-to-end chaos tests: replay determinism, degraded serving, kill+resume.

These are the acceptance checks of the resilience work (see
docs/resilience.md): a seeded fault plan replays bit-for-bit; a serving
stack under execution failures degrades instead of dropping requests; a
run SIGKILLed mid-measurement resumes to the bit-identical result an
uninterrupted run produces.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.resilience.chaos import (
    PRESETS,
    experiment_digest,
    preset_plan,
    run_chaos_experiment,
    run_chaos_load,
)
from repro.resilience.checkpoint import MANIFEST_NAME
from repro.resilience.faults import PLAN_ENV_VAR, FaultPlan, FaultSpec


def tiny_config(**overrides) -> ExperimentConfig:
    settings = dict(
        n_inputs=24,
        n_clusters=3,
        tuner_generations=2,
        tuner_population=5,
        tuning_neighbors=2,
        max_subsets=12,
        seed=0,
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


class TestPresets:
    def test_all_presets_build_valid_plans(self):
        for name in PRESETS:
            plan = preset_plan(name, seed=3)
            assert plan.faults and plan.seed == 3
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            preset_plan("no-such-preset")


class TestChaosExperiment:
    def test_torn_writes_replay_identically_and_match_baseline(self, tmp_path):
        """Same plan, two replays: identical reports, baseline-identical data."""
        baseline = experiment_digest(run_experiment("sort1", config=tiny_config()))
        plan = preset_plan("shard-torn-write")
        reports = []
        for replay in range(2):
            config = tiny_config(cache_path=str(tmp_path / f"store-{replay}"))
            reports.append(
                run_chaos_experiment(
                    "sort1", plan, config=config, baseline_digest=baseline
                )
            )
        assert reports[0]["digest"] == reports[1]["digest"]
        assert reports[0]["compared"] == reports[1]["compared"]
        for report in reports:
            assert report["compared"]["invariants"] == {
                "completed": True,
                "matches_baseline": True,
            }
            assert report["compared"]["result_digest"] == baseline
            # The plan actually tore a write; recovery was exercised.
            assert report["diagnostics"]["faults"]["fired"].get(
                "cache.shard_write"
            )

    def test_failed_run_reports_completed_false(self, tmp_path):
        """A plan the runtime cannot absorb yields a failed-invariant report,
        not an exception out of the harness."""
        plan = FaultPlan(
            faults=[FaultSpec(site="runtime.chunk", action="raise", nth=1)]
        )
        config = tiny_config(batch_chunk=4, cache_path=str(tmp_path / "store"))
        report = run_chaos_experiment("sort1", plan, config=config)
        assert report["compared"]["invariants"]["completed"] is False
        assert report["compared"]["result_digest"] is None
        assert "error" in report["diagnostics"]


class TestChaosLoad:
    def test_brownout_replays_identically_with_degraded_service(
        self, sort_training
    ):
        deployed = sort_training["training"].deployed
        plan = preset_plan("serve-brownout")
        reports = [
            run_chaos_load("sort2", deployed, plan, requests=24, unique_inputs=6)
            for _ in range(2)
        ]
        assert reports[0]["digest"] == reports[1]["digest"]
        assert reports[0]["compared"] == reports[1]["compared"]
        for report in reports:
            assert report["compared"]["invariants"] == {
                "answered_all": True,
                "breaker_opened": True,
                "served_degraded": True,
            }


RUNNER_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.resilience.chaos import experiment_digest
    from repro.resilience.faults import install_from_env

    install_from_env()
    mode, store = sys.argv[1], sys.argv[2]
    config = ExperimentConfig(
        n_inputs=24,
        n_clusters=3,
        tuner_generations=2,
        tuner_population=5,
        tuning_neighbors=2,
        max_subsets=12,
        seed=0,
        batch_chunk=4,
        cache_path=None if mode == "clean" else store,
        checkpoint=mode != "clean",
        resume=mode == "resume",
    )
    result = run_experiment("sort1", config=config)
    print("DIGEST", experiment_digest(result))
    """
)


class TestKillAndResume:
    """SIGKILL mid-measurement, then --resume to a bit-identical result."""

    def run_script(self, tmp_path, mode, store, env_extra=None):
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src, env.get("PYTHONPATH")])
        )
        env.pop(PLAN_ENV_VAR, None)
        if env_extra:
            env.update(env_extra)
        script = tmp_path / "runner.py"
        script.write_text(RUNNER_SCRIPT)
        return subprocess.run(
            [sys.executable, str(script), mode, store],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        store = str(tmp_path / "store")
        kill_plan = FaultPlan(
            faults=[FaultSpec(site="runtime.chunk", action="kill", nth=6)]
        )

        killed = self.run_script(
            tmp_path, "checkpoint", store,
            env_extra={PLAN_ENV_VAR: kill_plan.to_json()},
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        manifest_path = os.path.join(store, MANIFEST_NAME)
        assert os.path.exists(manifest_path)
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["interrupted"] is True
        # The kill fires *after* the chunk is durably recorded.
        assert len(manifest["completed_chunks"]) == 6

        resumed = self.run_script(tmp_path, "resume", store)
        assert resumed.returncode == 0, resumed.stderr
        clean = self.run_script(tmp_path, "clean", str(tmp_path / "unused"))
        assert clean.returncode == 0, clean.stderr

        digest_of = lambda proc: [  # noqa: E731 - local shorthand
            line for line in proc.stdout.splitlines() if line.startswith("DIGEST")
        ][0]
        assert digest_of(resumed) == digest_of(clean)

        with open(manifest_path, encoding="utf-8") as handle:
            assert json.load(handle)["interrupted"] is False

    def test_resume_with_other_config_refuses(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointMismatch

        store = str(tmp_path / "store")
        config = tiny_config(batch_chunk=4, cache_path=store, checkpoint=True)
        run_experiment("sort1", config=config)
        other = dataclasses.replace(config, seed=1, resume=True)
        with pytest.raises(CheckpointMismatch):
            run_experiment("sort1", config=other)
