"""Tests for the crash-safe experiment checkpoint manifest."""

import json
import os

import pytest

from repro.resilience.checkpoint import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CheckpointMismatch,
    ExperimentCheckpoint,
    config_digest,
)


class FakeRuntime:
    """Stands in for Runtime: counts save_cache() calls."""

    def __init__(self):
        self.saves = 0

    def save_cache(self):
        self.saves += 1


def read_manifest(store):
    with open(os.path.join(str(store), MANIFEST_NAME), encoding="utf-8") as handle:
        return json.load(handle)


class TestConfigDigest:
    def test_stable_under_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_differs_across_payloads(self):
        assert config_digest({"seed": 0}) != config_digest({"seed": 1})


class TestWriting:
    def test_set_phase_creates_manifest_in_fresh_store(self, tmp_path):
        store = tmp_path / "store"  # does not exist yet
        checkpoint = ExperimentCheckpoint(str(store), "digest-a")
        checkpoint.set_phase("train")
        manifest = read_manifest(store)
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["config"] == "digest-a"
        assert manifest["phase"] == "train"
        assert manifest["interrupted"] is True
        assert manifest["completed_chunks"] == []

    def test_chunk_completed_saves_cache_then_records(self, tmp_path):
        checkpoint = ExperimentCheckpoint(str(tmp_path / "store"), "d")
        runtime = FakeRuntime()
        for _ in range(3):
            checkpoint.chunk_completed(runtime)
        assert runtime.saves == 3
        manifest = read_manifest(tmp_path / "store")
        assert manifest["completed_chunks"] == [0, 1, 2]
        assert manifest["interrupted"] is True

    def test_every_batches_manifest_rewrites(self, tmp_path):
        checkpoint = ExperimentCheckpoint(str(tmp_path / "store"), "d", every=2)
        runtime = FakeRuntime()
        checkpoint.chunk_completed(runtime)  # chunk 0: no manifest yet
        assert not os.path.exists(checkpoint.manifest_path)
        checkpoint.chunk_completed(runtime)  # chunk 1: manifest written
        assert read_manifest(tmp_path / "store")["completed_chunks"] == [0, 1]

    def test_rejects_bad_every(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentCheckpoint(str(tmp_path), "d", every=0)

    def test_finish_clears_interrupted(self, tmp_path):
        checkpoint = ExperimentCheckpoint(str(tmp_path / "store"), "d")
        runtime = FakeRuntime()
        checkpoint.chunk_completed(runtime)
        checkpoint.finish(runtime)
        assert read_manifest(tmp_path / "store")["interrupted"] is False
        assert runtime.saves == 2


class TestResume:
    def test_resume_without_manifest_is_none(self, tmp_path):
        checkpoint = ExperimentCheckpoint(str(tmp_path / "store"), "d")
        assert checkpoint.resume() is None
        assert checkpoint.resumed_from is None

    def test_resume_adopts_matching_manifest(self, tmp_path):
        store = str(tmp_path / "store")
        first = ExperimentCheckpoint(store, "same")
        first.set_phase("train")
        first.chunk_completed(FakeRuntime())
        second = ExperimentCheckpoint(store, "same")
        manifest = second.resume()
        assert manifest is not None
        assert manifest["completed_chunks"] == [0]
        assert second.resumed_from == manifest

    def test_resume_refuses_other_experiments_manifest(self, tmp_path):
        store = str(tmp_path / "store")
        ExperimentCheckpoint(store, "one").set_phase("train")
        with pytest.raises(CheckpointMismatch):
            ExperimentCheckpoint(store, "two").resume()

    def test_corrupt_manifest_reads_as_missing(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / MANIFEST_NAME).write_text("not json{{")
        assert ExperimentCheckpoint(str(store), "d").load() is None

    def test_unknown_version_reads_as_missing(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / MANIFEST_NAME).write_text(
            json.dumps({"version": MANIFEST_VERSION + 1, "config": "d"})
        )
        assert ExperimentCheckpoint(str(store), "d").load() is None
