"""Tests for the unified retry policy."""

import pytest

from repro.resilience.retry import RetryError, RetryPolicy


class Flaky:
    """Callable failing a fixed number of times before succeeding."""

    def __init__(self, failures, error=OSError("boom"), value="ok"):
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


def no_sleep(_seconds):
    pass


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.backoff_delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        assert policy.backoff_delay(1) == policy.backoff_delay(1)
        assert policy.backoff_delay(1) != policy.backoff_delay(2)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.1)
        for attempt in range(1, 20):
            assert 0.9 <= policy.backoff_delay(attempt) <= 1.1


class TestRun:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        counters = {}
        assert policy.run(Flaky(0), counters=counters, sleep=no_sleep) == "ok"
        assert counters == {"retry_attempts": 1}

    def test_recovers_after_retries(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        flaky = Flaky(2)
        counters = {}
        assert policy.run(flaky, counters=counters, sleep=no_sleep) == "ok"
        assert flaky.calls == 3
        assert counters["retry_retries"] == 2
        assert counters["retry_recoveries"] == 1

    def test_reraises_last_error_on_exhaustion(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        error = OSError("persistent")
        counters = {}
        with pytest.raises(OSError, match="persistent"):
            policy.run(Flaky(5, error=error), counters=counters, sleep=no_sleep)
        assert counters["retry_giveups"] == 1

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        flaky = Flaky(5, error=ValueError("typed"))
        with pytest.raises(ValueError):
            policy.run(flaky, retryable=(OSError,), sleep=no_sleep)
        assert flaky.calls == 1

    def test_retryable_override_narrows_policy_default(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        flaky = Flaky(1, error=ConnectionRefusedError("no"))
        assert (
            policy.run(flaky, retryable=(ConnectionRefusedError,), sleep=no_sleep)
            == "ok"
        )

    def test_before_retry_hook_runs_between_attempts(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        seen = []
        policy.run(
            Flaky(2),
            before_retry=lambda error, attempt: seen.append(attempt),
            sleep=no_sleep,
        )
        assert seen == [1, 2]

    def test_deadline_gives_up_early(self):
        clock = iter([0.0, 0.0, 100.0]).__next__
        policy = RetryPolicy(max_attempts=10, base_delay=0.1, deadline=1.0)
        flaky = Flaky(9)
        with pytest.raises(OSError):
            policy.run(flaky, sleep=no_sleep, clock=clock)
        assert flaky.calls == 2  # second attempt landed past the deadline


class TestWaitFor:
    def test_returns_truthy_result(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        values = iter([None, None, "ready"])
        assert policy.wait_for(lambda: next(values), sleep=no_sleep) == "ready"

    def test_raises_retry_error_when_never_true(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        counters = {}
        with pytest.raises(RetryError):
            policy.wait_for(lambda: False, counters=counters, sleep=no_sleep)
        assert counters["retry_giveups"] == 1
        assert counters["retry_attempts"] == 3
