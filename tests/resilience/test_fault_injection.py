"""Tests for the deterministic fault-injection harness."""

import json
import os

import pytest

from repro.resilience.faults import (
    PLAN_ENV_VAR,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fault_scope,
    fault_site,
    install,
    install_from_env,
    maybe_fail,
    truncate_bytes,
)


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", nth=1, probability=0.5)
        with pytest.raises(ValueError):
            FaultSpec(site="s")

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", action="explode", nth=1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", nth=0)
        with pytest.raises(ValueError):
            FaultSpec(site="s", probability=1.5)

    def test_record_round_trip(self):
        spec = FaultSpec(
            site="cache.shard_write",
            action="truncate",
            nth=3,
            count=2,
            truncate_bytes=8,
            match="shards",
        )
        assert FaultSpec.from_record(spec.to_record()) == spec


class TestFaultPlan:
    def test_json_round_trip_and_digest_stability(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(site="a", nth=1),
                FaultSpec(site="b", probability=0.5, count=3),
            ],
            seed=7,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.digest() == plan.digest()

    def test_digest_differs_across_plans(self):
        one = FaultPlan(faults=[FaultSpec(site="a", nth=1)])
        two = FaultPlan(faults=[FaultSpec(site="a", nth=2)])
        assert one.digest() != two.digest()


class TestInjector:
    def test_nth_trigger_fires_exactly_once(self):
        injector = FaultInjector(FaultPlan(faults=[FaultSpec(site="s", nth=3)]))
        hits = [injector.check("s") is not None for _ in range(9)]
        assert hits == [False, False, True] + [False] * 6

    def test_nth_trigger_with_count_fires_on_multiples(self):
        injector = FaultInjector(
            FaultPlan(faults=[FaultSpec(site="s", nth=2, count=2)])
        )
        hits = [injector.check("s") is not None for _ in range(8)]
        assert hits == [False, True, False, True] + [False] * 4

    def test_probability_trigger_is_seed_deterministic(self):
        plan = FaultPlan(faults=[FaultSpec(site="s", probability=0.3)], seed=11)
        one = FaultInjector(plan)
        two = FaultInjector(plan)
        trace_one = [one.check("s") is not None for _ in range(50)]
        trace_two = [two.check("s") is not None for _ in range(50)]
        assert trace_one == trace_two
        assert any(trace_one) and not all(trace_one)  # p=0.3 actually mixes

    def test_probability_differs_across_seeds(self):
        def trace(seed):
            plan = FaultPlan(
                faults=[FaultSpec(site="s", probability=0.5)], seed=seed
            )
            injector = FaultInjector(plan)
            return [injector.check("s") is not None for _ in range(64)]

        assert trace(0) != trace(1)

    def test_match_filters_on_detail(self):
        injector = FaultInjector(
            FaultPlan(faults=[FaultSpec(site="s", nth=1, match="victim")])
        )
        assert injector.check("s", detail="other") is None
        assert injector.check("s", detail="the-victim-file") is not None

    def test_sites_count_independently(self):
        injector = FaultInjector(
            FaultPlan(
                faults=[FaultSpec(site="a", nth=2), FaultSpec(site="b", nth=1)]
            )
        )
        assert injector.check("b") is not None
        assert injector.check("a") is None
        assert injector.check("a") is not None

    def test_snapshot_reports_calls_and_fires(self):
        injector = FaultInjector(FaultPlan(faults=[FaultSpec(site="s", nth=2)]))
        for _ in range(3):
            injector.check("s")
        snapshot = injector.snapshot()
        assert snapshot["calls"]["s"] == 3
        assert snapshot["fired"]["s"] == 1


class TestInstallation:
    def test_fault_scope_installs_and_clears(self):
        plan = FaultPlan(faults=[FaultSpec(site="s", nth=1)])
        assert active_injector() is None
        with fault_scope(plan, env=False) as injector:
            assert active_injector() is injector
        assert active_injector() is None

    def test_fault_scope_exports_env_for_subprocesses(self):
        plan = FaultPlan(faults=[FaultSpec(site="s", nth=1)], seed=3)
        with fault_scope(plan):
            assert FaultPlan.from_json(os.environ[PLAN_ENV_VAR]) == plan
        assert PLAN_ENV_VAR not in os.environ

    def test_install_from_env(self, monkeypatch):
        plan = FaultPlan(faults=[FaultSpec(site="s", nth=1)])
        monkeypatch.setenv(PLAN_ENV_VAR, plan.to_json())
        injector = install_from_env()
        try:
            assert injector is not None
            with pytest.raises(FaultError):
                maybe_fail("s")
        finally:
            install(None)

    def test_install_from_env_without_plan_is_none(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV_VAR, raising=False)
        assert install_from_env() is None

    def test_no_injector_is_free_of_effects(self):
        assert fault_site("anything") is None
        assert truncate_bytes("anything") is None
        maybe_fail("anything")  # no-op


class TestActions:
    def test_maybe_fail_raises_fault_error(self):
        plan = FaultPlan(faults=[FaultSpec(site="s", nth=1)])
        with fault_scope(plan, env=False):
            with pytest.raises(FaultError) as excinfo:
                maybe_fail("s")
        assert excinfo.value.site == "s"
        assert isinstance(excinfo.value, OSError)

    def test_truncate_bytes_returns_limit(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(site="w", action="truncate", nth=1, truncate_bytes=8)
            ]
        )
        with fault_scope(plan, env=False):
            assert truncate_bytes("w") == 8
            assert truncate_bytes("w") is None  # fired once

    def test_drop_spec_returned_for_caller_action(self):
        plan = FaultPlan(faults=[FaultSpec(site="d", action="drop", nth=1)])
        with fault_scope(plan, env=False):
            spec = fault_site("d")
        assert spec is not None and spec.action == "drop"

    def test_delay_sleeps_briefly(self):
        import time

        plan = FaultPlan(
            faults=[
                FaultSpec(site="z", action="delay", nth=1, delay_seconds=0.01)
            ]
        )
        with fault_scope(plan, env=False):
            started = time.perf_counter()
            fault_site("z")
            assert time.perf_counter() - started >= 0.009


class TestReplayDeterminism:
    def test_identical_plans_replay_identically(self):
        """The core chaos property: same plan, same seed, same firing trace."""
        plan = FaultPlan(
            faults=[
                FaultSpec(site="a", probability=0.4),
                FaultSpec(site="b", nth=3, count=2),
            ],
            seed=5,
        )

        def trace():
            injector = FaultInjector(plan)
            return [
                (site, injector.check(site) is not None)
                for _ in range(40)
                for site in ("a", "b")
            ]

        assert trace() == trace()

    def test_env_round_trip_preserves_plan(self):
        plan = FaultPlan(
            faults=[FaultSpec(site="s", probability=0.25, count=4)], seed=9
        )
        assert FaultPlan.from_json(json.dumps(json.loads(plan.to_json()))) == plan
