"""Unit tests for the lazy input-source layer (repro.core.inputs)."""

import numpy as np
import pytest

from repro.core.inputs import (
    DEFAULT_CHUNK,
    GeneratedInputSource,
    InputSource,
    MaterializedInputs,
    ObservedInputSource,
    ensure_source,
    per_index_rng,
)


def squares(index, seed):
    return index * index + seed


class TestPerIndexRng:
    def test_deterministic_per_triple(self):
        a = per_index_rng(3, 7, "bench", "synthetic").uniform(size=4)
        b = per_index_rng(3, 7, "bench", "synthetic").uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_streams_differ_across_indices_and_seeds(self):
        base = per_index_rng(0, 0, "bench").uniform(size=4)
        other_index = per_index_rng(0, 1, "bench").uniform(size=4)
        other_seed = per_index_rng(1, 0, "bench").uniform(size=4)
        assert not np.array_equal(base, other_index)
        assert not np.array_equal(base, other_seed)

    def test_namespace_separates_populations(self):
        a = per_index_rng(0, 0, "sort", "synthetic").uniform(size=4)
        b = per_index_rng(0, 0, "sort", "real_world").uniform(size=4)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            per_index_rng(0, -1, "bench")


class TestGeneratedInputSource:
    def test_length_and_indexing(self):
        source = GeneratedInputSource(5, seed=2, item=squares)
        assert len(source) == 5
        assert source[0] == 2
        assert source[4] == 18
        assert source[-1] == 18  # negative indices resolve like a list

    def test_out_of_range_rejected(self):
        source = GeneratedInputSource(3, seed=0, item=squares)
        with pytest.raises(IndexError):
            source[3]
        with pytest.raises(IndexError):
            source[-4]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            GeneratedInputSource(-1, seed=0, item=squares)

    def test_iteration_matches_materialized(self):
        source = GeneratedInputSource(6, seed=1, item=squares)
        assert list(source) == source.materialized() == [squares(i, 1) for i in range(6)]

    def test_slice_returns_lazy_view(self):
        source = GeneratedInputSource(10, seed=0, item=squares)
        view = source[2:8:2]
        assert isinstance(view, InputSource)
        assert list(view) == [4, 16, 36]

    def test_is_a_sequence(self):
        source = GeneratedInputSource(4, seed=0, item=squares)
        assert 9 in source
        assert source.index(4) == 2


class TestIterChunks:
    def test_chunk_sizes_and_order(self):
        source = GeneratedInputSource(7, seed=0, item=squares)
        chunks = list(source.iter_chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [x for c in chunks for x in c] == source.materialized()

    def test_default_chunk(self):
        source = GeneratedInputSource(DEFAULT_CHUNK + 1, seed=0, item=squares)
        chunks = list(source.iter_chunks())
        assert [len(c) for c in chunks] == [DEFAULT_CHUNK, 1]

    def test_invalid_chunk_rejected(self):
        source = GeneratedInputSource(3, seed=0, item=squares)
        with pytest.raises(ValueError):
            next(source.iter_chunks(0))

    def test_chunks_are_materialized_lazily(self):
        calls = []

        def tracking(index, seed):
            calls.append(index)
            return index

        source = GeneratedInputSource(6, seed=0, item=tracking)
        iterator = source.iter_chunks(2)
        next(iterator)
        assert calls == [0, 1]  # later chunks not generated yet
        next(iterator)
        assert calls == [0, 1, 2, 3]


class TestSelect:
    def test_select_is_lazy_and_ordered(self):
        calls = []

        def tracking(index, seed):
            calls.append(index)
            return index * 10

        source = GeneratedInputSource(100, seed=0, item=tracking)
        view = source.select([5, 2, 7])
        assert calls == []  # selection itself generates nothing
        assert len(view) == 3
        assert list(view) == [50, 20, 70]

    def test_select_of_select_composes(self):
        source = GeneratedInputSource(10, seed=0, item=squares)
        view = source.select(range(2, 9)).select([0, 3])
        assert list(view) == [squares(2, 0), squares(5, 0)]


class TestMaterializedInputs:
    def test_wraps_a_list(self):
        inputs = MaterializedInputs(["a", "b", "c"])
        assert len(inputs) == 3
        assert inputs[1] == "b"
        assert list(inputs) == ["a", "b", "c"]

    def test_materialized_returns_a_copy(self):
        inputs = MaterializedInputs([1, 2])
        copy = inputs.materialized()
        copy.append(3)
        assert len(inputs) == 2

    def test_ensure_source_passthrough_and_wrap(self):
        source = GeneratedInputSource(2, seed=0, item=squares)
        assert ensure_source(source) is source
        wrapped = ensure_source([4, 5])
        assert isinstance(wrapped, MaterializedInputs)
        assert list(wrapped) == [4, 5]


class TestObservedInputSource:
    def test_observer_sees_every_materialization(self):
        seen = []
        source = ObservedInputSource(
            GeneratedInputSource(4, seed=0, item=squares), seen.append
        )
        assert list(source) == [0, 1, 4, 9]
        assert len(seen) == 4
        assert all(s >= 0 for s in seen)

    def test_delegates_length_and_select(self):
        seen = []
        source = ObservedInputSource(
            GeneratedInputSource(10, seed=0, item=squares), seen.append
        )
        view = source.select([3, 1])
        assert len(source) == 10
        assert list(view) == [9, 1]
        assert len(seen) == 2  # selections still route through the observer
