"""Property-based tests for Level-2 invariants (hypothesis).

Two components are exercised generatively:

* :func:`repro.core.level2.enumerate_feature_subsets` -- cap respected,
  sentinel subsets kept under sampling, determinism under a fixed seed, no
  duplicates, at most one level per property;
* :func:`repro.core.level2.build_cost_matrix` -- shape, zero diagonal,
  non-negativity, finiteness, zero rows for empty classes, monotonicity in
  the accuracy-cost weight.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataset import PerformanceDataset
from repro.core.level2 import build_cost_matrix, enumerate_feature_subsets
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration

#: Per-property level counts: up to 4 properties with up to 3 levels each,
#: giving full enumerations between 1 and (3+1)^4 - 1 = 255 subsets.
LEVEL_COUNTS = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)


class _FeatureNamesOnly:
    """The minimal dataset surface ``enumerate_feature_subsets`` consumes."""

    def __init__(self, feature_names):
        self.feature_names = feature_names


def dataset_with_levels(level_counts):
    names = [
        f"p{prop}@{level}"
        for prop, levels in enumerate(level_counts)
        for level in range(levels)
    ]
    return _FeatureNamesOnly(names)


def full_enumeration_size(level_counts):
    size = 1
    for levels in level_counts:
        size *= levels + 1
    return size - 1


class TestEnumerateFeatureSubsetsProperties:
    @given(level_counts=LEVEL_COUNTS, max_subsets=st.integers(2, 300), seed=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_cap_respected_and_exact_when_not_sampling(self, level_counts, max_subsets, seed):
        dataset = dataset_with_levels(level_counts)
        subsets = enumerate_feature_subsets(dataset, max_subsets, seed=seed)
        full = full_enumeration_size(level_counts)
        if full <= max_subsets:
            assert len(subsets) == full
        else:
            assert len(subsets) == max_subsets

    @given(level_counts=LEVEL_COUNTS, max_subsets=st.integers(2, 300), seed=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_no_duplicates_and_one_level_per_property(self, level_counts, max_subsets, seed):
        dataset = dataset_with_levels(level_counts)
        subsets = enumerate_feature_subsets(dataset, max_subsets, seed=seed)
        assert len(subsets) == len(set(subsets))
        for subset in subsets:
            assert subset  # never the empty subset
            properties = [name.rpartition("@")[0] for name in subset]
            assert len(properties) == len(set(properties))

    @given(level_counts=LEVEL_COUNTS, max_subsets=st.integers(2, 300), seed=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_fixed_seed(self, level_counts, max_subsets, seed):
        dataset = dataset_with_levels(level_counts)
        first = enumerate_feature_subsets(dataset, max_subsets, seed=seed)
        second = enumerate_feature_subsets(dataset, max_subsets, seed=seed)
        assert first == second

    @given(level_counts=LEVEL_COUNTS, max_subsets=st.integers(2, 300), seed=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_sampling_always_keeps_cheapest_and_richest(self, level_counts, max_subsets, seed):
        dataset = dataset_with_levels(level_counts)
        if full_enumeration_size(level_counts) <= max_subsets:
            return  # no sampling happened; nothing to assert
        subsets = enumerate_feature_subsets(dataset, max_subsets, seed=seed)
        cheapest = tuple(f"p{prop}@0" for prop in range(len(level_counts)))
        richest = tuple(f"p{prop}@{levels - 1}" for prop, levels in enumerate(level_counts))
        assert cheapest in subsets
        assert richest in subsets

    def test_cap_below_one_rejected(self):
        with pytest.raises(ValueError):
            enumerate_feature_subsets(dataset_with_levels([2]), max_subsets=0)


def cost_matrix_dataset(times, accuracies, threshold):
    n, k = times.shape
    return PerformanceDataset(
        feature_names=["f@0"],
        features=np.zeros((n, 1)),
        extraction_costs=np.ones((n, 1)),
        times=times,
        accuracies=accuracies,
        landmarks=[Configuration({"id": i}) for i in range(k)],
        requirement=(
            AccuracyRequirement(accuracy_threshold=threshold)
            if threshold is not None
            else AccuracyRequirement.disabled()
        ),
    )


#: Strategy for (times, accuracies, threshold) triples of matching shape.
@st.composite
def cost_matrix_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    k = draw(st.integers(min_value=1, max_value=4))
    finite = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False, width=64)
    times = np.array(
        draw(st.lists(st.lists(finite, min_size=k, max_size=k), min_size=n, max_size=n))
    )
    unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
    accuracies = np.array(
        draw(st.lists(st.lists(unit, min_size=k, max_size=k), min_size=n, max_size=n))
    )
    threshold = draw(st.one_of(st.none(), unit))
    return times, accuracies, threshold


class TestBuildCostMatrixProperties:
    @given(inputs=cost_matrix_inputs(), weight=st.floats(0.0, 8.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_shape_diagonal_nonnegativity_finiteness(self, inputs, weight):
        times, accuracies, threshold = inputs
        dataset = cost_matrix_dataset(times, accuracies, threshold)
        labels = dataset.labels()
        cost = build_cost_matrix(dataset, labels, accuracy_cost_weight=weight)
        k = dataset.n_landmarks
        assert cost.shape == (k, k)
        assert np.allclose(np.diag(cost), 0.0)
        assert np.all(cost >= 0.0)
        assert np.all(np.isfinite(cost))

    @given(inputs=cost_matrix_inputs())
    @settings(max_examples=80, deadline=None)
    def test_rows_of_unused_classes_are_zero(self, inputs):
        times, accuracies, threshold = inputs
        dataset = cost_matrix_dataset(times, accuracies, threshold)
        labels = dataset.labels()
        cost = build_cost_matrix(dataset, labels)
        for i in range(dataset.n_landmarks):
            if not np.any(labels == i):
                np.testing.assert_array_equal(cost[i], 0.0)

    @given(inputs=cost_matrix_inputs())
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_accuracy_cost_weight(self, inputs):
        times, accuracies, threshold = inputs
        dataset = cost_matrix_dataset(times, accuracies, threshold)
        labels = dataset.labels()
        light = build_cost_matrix(dataset, labels, accuracy_cost_weight=0.5)
        heavy = build_cost_matrix(dataset, labels, accuracy_cost_weight=4.0)
        assert np.all(heavy >= light - 1e-9)
