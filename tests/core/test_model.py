"""Tests for the Section 4.3 theoretical model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    expected_speedup_loss,
    fraction_of_full_speedup,
    loss_curve,
    worst_case_loss,
    worst_case_region_size,
)


class TestExpectedLoss:
    def test_no_loss_at_region_size_extremes(self):
        assert expected_speedup_loss([0.0], 5) == pytest.approx(0.0)
        assert expected_speedup_loss([1.0], 5) == pytest.approx(0.0)

    def test_loss_decreases_with_more_landmarks(self):
        losses = [expected_speedup_loss([0.2, 0.3], k) for k in (1, 2, 5, 10, 50)]
        assert all(b < a for a, b in zip(losses, losses[1:]))

    def test_speedup_weights_scale_contributions(self):
        uniform = expected_speedup_loss([0.5, 0.01], 3, speedups=[1.0, 1.0])
        weighted = expected_speedup_loss([0.5, 0.01], 3, speedups=[100.0, 1.0])
        assert weighted > uniform

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            expected_speedup_loss([1.5], 3)
        with pytest.raises(ValueError):
            expected_speedup_loss([0.5], -1)
        with pytest.raises(ValueError):
            expected_speedup_loss([0.5], 3, speedups=[1.0, 2.0])


class TestWorstCase:
    def test_worst_case_region_size_formula(self):
        assert worst_case_region_size(1) == pytest.approx(0.5)
        assert worst_case_region_size(9) == pytest.approx(0.1)

    def test_worst_case_is_the_maximizer(self):
        for k in (2, 5, 9):
            worst = worst_case_region_size(k)
            curve = loss_curve(np.linspace(0.001, 0.999, 999), k)
            assert worst_case_loss(k) >= curve.max() - 1e-9

    def test_loss_curve_is_unimodal_shape(self):
        curve = loss_curve(np.linspace(0, 1, 101), 4)
        peak = int(np.argmax(curve))
        assert np.all(np.diff(curve[: peak + 1]) >= -1e-12)
        assert np.all(np.diff(curve[peak:]) <= 1e-12)


class TestFractionOfFullSpeedup:
    def test_monotonically_increasing_in_landmarks(self):
        ks = np.arange(1, 101)
        fractions = fraction_of_full_speedup(ks)
        assert np.all(np.diff(fractions) >= 0.0)

    def test_diminishing_returns(self):
        """The marginal gain of adding landmarks shrinks (the paper's message)."""
        fractions = fraction_of_full_speedup([10, 20, 30, 90, 100])
        gain_early = fractions[1] - fractions[0]
        gain_late = fractions[4] - fractions[3]
        assert gain_late < gain_early

    def test_approaches_one(self):
        assert fraction_of_full_speedup([500])[0] > 0.99


@settings(max_examples=50, deadline=None)
@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    k=st.integers(min_value=0, max_value=200),
)
def test_property_loss_bounded(p, k):
    """Property: the per-region loss is always within [0, 1]."""
    value = float(loss_curve(np.array([p]), k)[0])
    assert 0.0 <= value <= 1.0
