"""Tests for the <F, T, A, E> performance dataset."""

import numpy as np
import pytest

from repro.core.dataset import PerformanceDataset
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration


def make_dataset(requirement=None, n=6):
    """A small hand-built dataset with 3 landmarks and 2 properties x 2 levels."""
    feature_names = ["a@0", "a@1", "b@0", "b@1"]
    rng = np.random.default_rng(0)
    features = rng.normal(size=(n, 4))
    extraction_costs = np.abs(rng.normal(size=(n, 4))) + 0.1
    times = np.array(
        [[10.0, 20.0, 30.0],
         [30.0, 10.0, 20.0],
         [20.0, 30.0, 10.0],
         [10.0, 11.0, 12.0],
         [5.0, 50.0, 50.0],
         [50.0, 5.0, 50.0]][:n]
    )
    accuracies = np.array(
        [[1.0, 1.0, 1.0],
         [0.1, 1.0, 1.0],
         [1.0, 0.1, 1.0],
         [0.1, 0.1, 1.0],
         [1.0, 1.0, 0.1],
         [1.0, 1.0, 1.0]][:n]
    )
    landmarks = [Configuration({"id": i}) for i in range(3)]
    return PerformanceDataset(
        feature_names=feature_names,
        features=features,
        extraction_costs=extraction_costs,
        times=times,
        accuracies=accuracies,
        landmarks=landmarks,
        requirement=requirement or AccuracyRequirement.disabled(),
    )


class TestDatasetBasics:
    def test_shapes_and_counts(self):
        dataset = make_dataset()
        assert dataset.n_inputs == 6
        assert dataset.n_features == 4
        assert dataset.n_landmarks == 3

    def test_shape_mismatches_rejected(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            PerformanceDataset(
                feature_names=dataset.feature_names,
                features=dataset.features,
                extraction_costs=dataset.extraction_costs[:, :2],
                times=dataset.times,
                accuracies=dataset.accuracies,
                landmarks=dataset.landmarks,
                requirement=dataset.requirement,
            )
        with pytest.raises(ValueError):
            PerformanceDataset(
                feature_names=dataset.feature_names,
                features=dataset.features,
                extraction_costs=dataset.extraction_costs,
                times=dataset.times[:, :2],
                accuracies=dataset.accuracies,
                landmarks=dataset.landmarks,
                requirement=dataset.requirement,
            )

    def test_feature_index_and_columns(self):
        dataset = make_dataset()
        assert dataset.feature_index("b@0") == 2
        columns = dataset.feature_columns(["b@0", "a@0"])
        assert columns.shape == (6, 2)
        assert np.allclose(columns[:, 1], dataset.features[:, 0])
        with pytest.raises(KeyError):
            dataset.feature_index("missing@0")

    def test_extraction_cost_for_subset(self):
        dataset = make_dataset()
        costs = dataset.extraction_cost_for(["a@0", "b@1"])
        expected = dataset.extraction_costs[:, 0] + dataset.extraction_costs[:, 3]
        assert np.allclose(costs, expected)
        assert np.allclose(dataset.extraction_cost_for([]), 0.0)


class TestLabels:
    def test_time_only_labels_are_argmin(self):
        dataset = make_dataset()
        assert dataset.labels().tolist() == [0, 1, 2, 0, 0, 1]

    def test_accuracy_aware_labels_skip_inaccurate_landmarks(self):
        requirement = AccuracyRequirement(accuracy_threshold=0.5)
        dataset = make_dataset(requirement=requirement)
        labels = dataset.labels()
        # Row 1: landmark 0 is fastest-looking? no: times row1 = [30,10,20] and
        # accuracy row1 = [0.1,1,1] -> best accurate is landmark 1.
        assert labels[1] == 1
        # Row 3: only landmark 2 is accurate.
        assert labels[3] == 2
        # Row 4: landmark 2 inaccurate; fastest accurate is landmark 0.
        assert labels[4] == 0

    def test_no_accurate_landmark_falls_back_to_max_accuracy(self):
        requirement = AccuracyRequirement(accuracy_threshold=2.0)  # unattainable
        dataset = make_dataset(requirement=requirement)
        labels = dataset.labels()
        for i in range(dataset.n_inputs):
            assert labels[i] == int(np.argmax(dataset.accuracies[i]))

    def test_best_times_match_labels(self):
        dataset = make_dataset()
        labels = dataset.labels()
        best = dataset.best_times()
        assert np.allclose(best, dataset.times[np.arange(6), labels])


class TestSlicing:
    def test_subset_rows(self):
        dataset = make_dataset()
        subset = dataset.subset([0, 2, 4])
        assert subset.n_inputs == 3
        assert np.allclose(subset.times[1], dataset.times[2])

    def test_restrict_landmarks(self):
        dataset = make_dataset()
        restricted = dataset.restrict_landmarks([2, 0])
        assert restricted.n_landmarks == 2
        assert np.allclose(restricted.times[:, 0], dataset.times[:, 2])
        assert restricted.landmarks[1] == dataset.landmarks[0]

    def test_restrict_landmarks_empty_rejected(self):
        with pytest.raises(ValueError):
            make_dataset().restrict_landmarks([])


class TestWithoutInputs:
    def test_no_inputs_returns_self(self):
        dataset = make_dataset()
        assert dataset.inputs is None
        assert dataset.without_inputs() is dataset

    def test_strips_inputs_and_shares_matrices(self):
        dataset = make_dataset()
        dataset.inputs = ["x"] * dataset.n_inputs
        stripped = dataset.without_inputs()
        assert stripped is not dataset
        assert stripped.inputs is None
        assert dataset.inputs is not None  # the original keeps its inputs
        assert stripped.features is dataset.features
        assert stripped.times is dataset.times

    def test_memoized_identity(self):
        dataset = make_dataset()
        dataset.inputs = ["x"] * dataset.n_inputs
        assert dataset.without_inputs() is dataset.without_inputs()

    def test_lazy_source_subset_of_source(self):
        from repro.core.inputs import GeneratedInputSource, InputSource

        dataset = make_dataset()
        dataset.inputs = GeneratedInputSource(
            dataset.n_inputs, 0, lambda i, seed: i * 10
        )
        narrowed = dataset.subset([4, 2])
        assert isinstance(narrowed.inputs, InputSource)
        assert list(narrowed.inputs) == [40, 20]
