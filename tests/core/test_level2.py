"""Tests for the Level-2 pipeline (labels, cost matrix, classifier zoo)."""

import numpy as np
import pytest

from repro.core.dataset import PerformanceDataset
from repro.core.level2 import (
    Level2Config,
    build_cost_matrix,
    compute_labels,
    enumerate_feature_subsets,
    run_level2,
    train_classifier_zoo,
)
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration


def synthetic_dataset(n=80, seed=0, variable_accuracy=False):
    """A dataset where the best landmark is decided by feature a@0.

    Landmark 0 is fast on inputs with a@0 < 0 and slow otherwise; landmark 1
    is the reverse; landmark 2 is a mediocre-but-safe middle choice.  For the
    variable-accuracy variant, landmark 0 is also inaccurate on a@0 >= 0.
    """
    rng = np.random.default_rng(seed)
    feature_names = ["a@0", "a@1", "b@0", "b@1"]
    a = rng.normal(size=n)
    features = np.column_stack([a, a + rng.normal(scale=0.05, size=n), rng.normal(size=n), rng.normal(size=n)])
    extraction_costs = np.full((n, 4), 1.0)
    extraction_costs[:, 1] = 5.0
    extraction_costs[:, 3] = 5.0

    times = np.empty((n, 3))
    times[:, 0] = np.where(a < 0, 10.0, 100.0)
    times[:, 1] = np.where(a < 0, 100.0, 10.0)
    times[:, 2] = 40.0
    accuracies = np.ones((n, 3))
    if variable_accuracy:
        accuracies[:, 0] = np.where(a < 0, 1.0, 0.0)
        accuracies[:, 1] = np.where(a < 0, 0.0, 1.0)
    requirement = (
        AccuracyRequirement(accuracy_threshold=0.5)
        if variable_accuracy
        else AccuracyRequirement.disabled()
    )
    return PerformanceDataset(
        feature_names=feature_names,
        features=features,
        extraction_costs=extraction_costs,
        times=times,
        accuracies=accuracies,
        landmarks=[Configuration({"id": i}) for i in range(3)],
        requirement=requirement,
    )


class TestLabelsAndCostMatrix:
    def test_labels_follow_feature_structure(self):
        dataset = synthetic_dataset()
        labels = compute_labels(dataset)
        a = dataset.features[:, 0]
        assert np.all(labels[a < 0] == 0)
        assert np.all(labels[a >= 0] == 1)

    def test_cost_matrix_diagonal_zero_and_nonnegative(self):
        dataset = synthetic_dataset(variable_accuracy=True)
        labels = compute_labels(dataset)
        cost = build_cost_matrix(dataset, labels)
        assert cost.shape == (3, 3)
        assert np.allclose(np.diag(cost), 0.0)
        assert np.all(cost >= 0.0)

    def test_accuracy_violating_landmark_costs_more_than_safe_one(self):
        dataset = synthetic_dataset(variable_accuracy=True)
        labels = compute_labels(dataset)
        cost = build_cost_matrix(dataset, labels, accuracy_cost_weight=0.5)
        # For inputs labelled 0 (a < 0): landmark 1 is inaccurate AND slow,
        # landmark 2 is accurate and mildly slow -> misclassifying to 1 must
        # cost more than misclassifying to 2.
        assert cost[0, 1] > cost[0, 2]

    def test_faster_but_inaccurate_landmark_not_rewarded(self):
        """The clamping rule: a landmark faster than the label landmark must
        not produce a negative cost."""
        dataset = synthetic_dataset(variable_accuracy=True)
        labels = compute_labels(dataset)
        cost = build_cost_matrix(dataset, labels)
        assert cost.min() >= 0.0

    def test_higher_lambda_raises_accuracy_penalties(self):
        dataset = synthetic_dataset(variable_accuracy=True)
        labels = compute_labels(dataset)
        light = build_cost_matrix(dataset, labels, accuracy_cost_weight=0.5)
        heavy = build_cost_matrix(dataset, labels, accuracy_cost_weight=4.0)
        assert heavy[0, 1] > light[0, 1]


class TestSubsetEnumeration:
    def test_full_enumeration_size(self):
        dataset = synthetic_dataset()
        subsets = enumerate_feature_subsets(dataset, max_subsets=1000)
        # 2 properties x 2 levels -> (2+1)^2 - 1 = 8 non-empty subsets.
        assert len(subsets) == 8
        assert all(len(subset) >= 1 for subset in subsets)

    def test_at_most_one_level_per_property(self):
        dataset = synthetic_dataset()
        for subset in enumerate_feature_subsets(dataset, max_subsets=1000):
            properties = [name.rpartition("@")[0] for name in subset]
            assert len(properties) == len(set(properties))

    def test_sampling_respects_cap(self):
        dataset = synthetic_dataset()
        subsets = enumerate_feature_subsets(dataset, max_subsets=4, seed=1)
        assert len(subsets) == 4

    def test_sampling_is_deterministic(self):
        dataset = synthetic_dataset()
        assert enumerate_feature_subsets(dataset, 4, seed=2) == enumerate_feature_subsets(dataset, 4, seed=2)


class TestZooAndRunLevel2:
    def test_zoo_contains_all_families(self):
        dataset = synthetic_dataset()
        labels = compute_labels(dataset)
        cost = build_cost_matrix(dataset, labels)
        zoo = train_classifier_zoo(dataset, labels, range(40), cost, Level2Config(max_subsets=8))
        methods = {classifier.description.method for classifier in zoo}
        assert {"max_apriori", "decision_tree", "all_features", "incremental"} <= methods

    def test_run_level2_selects_low_cost_valid_classifier(self):
        dataset = synthetic_dataset(n=120)
        result = run_level2(dataset, range(60), range(60, 120), config=Level2Config(max_subsets=16))
        assert result.production.valid
        # The selected classifier should achieve close to the oracle cost of 10
        # (plus 1 unit of cheap feature extraction); the static best is 40.
        assert result.production.performance_cost < 30.0

    def test_run_level2_variable_accuracy_production_is_valid(self):
        dataset = synthetic_dataset(n=120, variable_accuracy=True)
        result = run_level2(dataset, range(60), range(60, 120), config=Level2Config(max_subsets=16))
        assert result.production.satisfaction_rate >= 0.9

    def test_relabel_shift_computed_when_cluster_info_given(self):
        dataset = synthetic_dataset(n=40)
        cluster_labels = np.zeros(40, dtype=int)
        result = run_level2(
            dataset,
            range(20),
            range(20, 40),
            config=Level2Config(max_subsets=4),
            level1_cluster_labels=cluster_labels,
            cluster_to_landmark=[2],
        )
        assert result.relabel_shift is not None
        assert 0.0 <= result.relabel_shift <= 1.0

    def test_empty_split_rejected(self):
        dataset = synthetic_dataset(n=20)
        with pytest.raises(ValueError):
            run_level2(dataset, [], range(20))


class TestLevel2EdgeCases:
    def test_single_input_dataset(self):
        """One row used for both training and selection must not crash."""
        dataset = synthetic_dataset(n=1)
        result = run_level2(dataset, [0], [0], config=Level2Config(max_subsets=4))
        assert result.production.valid
        assert len(result.evaluations) == len(result.classifiers)
        # With one input the best landmark is exact, so the production
        # classifier's execution cost is the oracle cost.
        oracle = float(dataset.best_times()[0])
        assert result.production.performance_cost_no_extraction == oracle

    def test_all_configs_identical_costs(self):
        """When every landmark performs identically there is nothing to
        learn; the search must still complete and pick a zero-regret
        classifier (extraction-free max-apriori is the cheapest)."""
        dataset = synthetic_dataset(n=24)
        dataset.times[:] = 7.0
        dataset.accuracies[:] = 1.0
        result = run_level2(dataset, range(12), range(12, 24), config=Level2Config(max_subsets=4))
        assert np.all(result.labels == 0)
        np.testing.assert_array_equal(result.cost_matrix, 0.0)
        assert result.production.classifier.name == "max_apriori"
        assert result.production.performance_cost == 7.0

    def test_enumeration_larger_than_max_subsets(self):
        """A cap far below the full enumeration still yields a full zoo of
        exactly max_subsets trees (plus the fixed families)."""
        dataset = synthetic_dataset(n=40)
        config = Level2Config(max_subsets=3)
        subsets = enumerate_feature_subsets(dataset, config.max_subsets, seed=config.seed)
        assert len(subsets) == 3  # 8 possible subsets, capped
        result = run_level2(dataset, range(20), range(20, 40), config=config)
        tree_names = [
            c.name for c in result.classifiers if c.description.method == "decision_tree"
        ]
        assert len(tree_names) == 3
        assert result.production.valid
