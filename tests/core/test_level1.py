"""Tests for the Level-1 pipeline (clustering, landmarks, measurement)."""

import numpy as np
import pytest

from repro.benchmarks_suite.sort.benchmark import SortBenchmark
from repro.core.level1 import (
    Level1Config,
    cluster_inputs,
    create_landmarks,
    extract_features,
    measure_performance,
    representative_input_indices,
    run_level1,
)


@pytest.fixture(scope="module")
def sort_setup():
    benchmark = SortBenchmark()
    inputs = benchmark.generate_inputs(24, "synthetic", seed=0)
    return benchmark.program, inputs


class TestLevel1Steps:
    def test_extract_features_shapes(self, sort_setup):
        program, inputs = sort_setup
        extracted = extract_features(program, inputs)
        assert extracted["features"].shape == (24, program.features.num_features())
        assert extracted["costs"].shape == extracted["features"].shape
        assert np.all(extracted["costs"] >= 0)

    def test_cluster_inputs_returns_requested_clusters(self, sort_setup):
        program, inputs = sort_setup
        extracted = extract_features(program, inputs)
        clustering = cluster_inputs(extracted["features"], n_clusters=4, seed=0)
        assert clustering["centroids"].shape[0] == 4
        assert clustering["labels"].shape == (24,)

    def test_representatives_belong_to_their_cluster(self, sort_setup):
        program, inputs = sort_setup
        extracted = extract_features(program, inputs)
        clustering = cluster_inputs(extracted["features"], n_clusters=4, seed=0)
        representatives = representative_input_indices(
            clustering["normalized"], clustering["labels"], clustering["centroids"], n_neighbors=2
        )
        assert len(representatives) == 4
        for cluster, members in enumerate(representatives):
            assert 1 <= len(members) <= 2
            for index in members:
                assert clustering["labels"][index] == cluster

    def test_create_landmarks_produces_valid_configs(self, sort_setup):
        program, inputs = sort_setup
        config = Level1Config(n_clusters=3, tuner_generations=2, tuner_population=4)
        landmarks = create_landmarks(program, inputs, [[0], [5], [10]], config)
        assert len(landmarks["landmarks"]) == 3
        for landmark in landmarks["landmarks"]:
            program.config_space.validate(landmark.as_dict())
        assert landmarks["evaluations"] > 0

    def test_measure_performance_shapes(self, sort_setup):
        program, inputs = sort_setup
        configs = [program.default_configuration()]
        measured = measure_performance(program, inputs[:6], configs)
        assert measured["times"].shape == (6, 1)
        assert measured["accuracies"].shape == (6, 1)
        assert np.all(measured["times"] > 0)


class TestRunLevel1:
    def test_end_to_end_result_structure(self, sort_setup):
        program, inputs = sort_setup
        config = Level1Config(n_clusters=4, tuner_generations=2, tuner_population=4, tuning_neighbors=2)
        result = run_level1(program, inputs, config=config)
        dataset = result.dataset
        assert dataset.n_inputs == len(inputs)
        assert dataset.n_landmarks == len(result.landmarks)
        assert len(result.cluster_to_landmark) == 4
        assert max(result.cluster_to_landmark) < dataset.n_landmarks
        assert dataset.times.shape == (len(inputs), dataset.n_landmarks)
        assert result.tuning_evaluations > 0

    def test_landmarks_deduplicated(self, sort_setup):
        program, inputs = sort_setup
        config = Level1Config(n_clusters=5, tuner_generations=1, tuner_population=4)
        result = run_level1(program, inputs, config=config)
        assert len(set(result.landmarks)) == len(result.landmarks)

    def test_progress_callback_invoked(self, sort_setup):
        program, inputs = sort_setup
        messages = []
        config = Level1Config(n_clusters=2, tuner_generations=1, tuner_population=4)
        run_level1(program, inputs[:8], config=config, progress=messages.append)
        assert any("landmark" in message for message in messages)
        assert any("measured" in message for message in messages)

    def test_too_few_inputs_rejected(self, sort_setup):
        program, inputs = sort_setup
        with pytest.raises(ValueError):
            run_level1(program, inputs[:1])
