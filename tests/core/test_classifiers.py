"""Tests for the candidate classifier zoo."""

import numpy as np
import pytest

from repro.core.classifiers import (
    AllFeaturesClassifier,
    IncrementalFeatureExaminationClassifier,
    MaxAprioriClassifier,
    SubsetDecisionTreeClassifier,
    order_features_by_cost,
)
from repro.core.dataset import PerformanceDataset
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration
from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def make_dataset(n=60, seed=0):
    """Feature a@* determines the best landmark; b@* is noise.

    a levels cost 1 and 3; b levels cost 10 and 30 (expensive and useless).
    """
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    features = np.column_stack([a, a, rng.normal(size=n), rng.normal(size=n)])
    extraction_costs = np.tile(np.array([1.0, 3.0, 10.0, 30.0]), (n, 1))
    times = np.column_stack(
        [np.where(a < 0, 5.0, 50.0), np.where(a < 0, 50.0, 5.0)]
    )
    accuracies = np.ones((n, 2))
    return PerformanceDataset(
        feature_names=["a@0", "a@1", "b@0", "b@1"],
        features=features,
        extraction_costs=extraction_costs,
        times=times,
        accuracies=accuracies,
        landmarks=[Configuration({"id": 0}), Configuration({"id": 1})],
        requirement=AccuracyRequirement.disabled(),
    )


def deployment_feature_set():
    """A feature set matching the dataset layout for deployment-time tests."""

    def a_extractor(value, fraction):
        charge(1.0 if fraction < 0.5 else 3.0, "feature")
        return float(value)

    def b_extractor(value, fraction):
        charge(10.0 if fraction < 0.5 else 30.0, "feature")
        return 0.0

    return FeatureSet(
        [
            FeatureExtractor("a", a_extractor, levels=2, level_fractions=[0.1, 1.0]),
            FeatureExtractor("b", b_extractor, levels=2, level_fractions=[0.1, 1.0]),
        ]
    )


class TestMaxApriori:
    def test_predicts_majority_label(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = MaxAprioriClassifier().fit(dataset, range(60), labels)
        majority = int(np.bincount(labels).argmax())
        predictions = classifier.predict_rows(dataset, range(60))
        assert np.all(predictions.labels == majority)
        assert np.all(predictions.extraction_costs == 0.0)

    def test_deployment_costs_nothing(self):
        dataset = make_dataset()
        classifier = MaxAprioriClassifier().fit(dataset, range(60), dataset.labels())
        label, cost = classifier.classify_input(1.0, deployment_feature_set())
        assert cost == 0.0
        assert label in (0, 1)


class TestSubsetDecisionTree:
    def test_learns_the_informative_feature(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = SubsetDecisionTreeClassifier(["a@0"]).fit(dataset, range(40), labels)
        predictions = classifier.predict_rows(dataset, range(40, 60))
        assert np.mean(predictions.labels == labels[40:60]) > 0.9

    def test_extraction_cost_matches_subset(self):
        dataset = make_dataset()
        labels = dataset.labels()
        cheap = SubsetDecisionTreeClassifier(["a@0"]).fit(dataset, range(40), labels)
        costly = SubsetDecisionTreeClassifier(["a@0", "b@1"]).fit(dataset, range(40), labels)
        assert np.all(cheap.predict_rows(dataset, range(5)).extraction_costs == 1.0)
        assert np.all(costly.predict_rows(dataset, range(5)).extraction_costs == 31.0)

    def test_deployment_extracts_only_needed_features(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = SubsetDecisionTreeClassifier(["a@0"]).fit(dataset, range(60), labels)
        label, cost = classifier.classify_input(-2.0, deployment_feature_set())
        assert label == 0
        assert cost == pytest.approx(1.0)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            SubsetDecisionTreeClassifier([])

    def test_unfitted_raises(self):
        dataset = make_dataset()
        with pytest.raises(RuntimeError):
            SubsetDecisionTreeClassifier(["a@0"]).predict_rows(dataset, range(5))


class TestAllFeatures:
    def test_uses_top_level_of_every_property(self):
        dataset = make_dataset()
        classifier = AllFeaturesClassifier(dataset.feature_names)
        assert set(classifier.feature_names) == {"a@1", "b@1"}

    def test_fit_predict(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = AllFeaturesClassifier(dataset.feature_names).fit(dataset, range(40), labels)
        predictions = classifier.predict_rows(dataset, range(40, 60))
        assert np.mean(predictions.labels == labels[40:60]) > 0.8


class TestIncrementalFeatureExamination:
    def test_order_features_by_cost(self):
        dataset = make_dataset()
        ordered = order_features_by_cost(dataset, dataset.feature_names)
        assert ordered == ["a@0", "a@1", "b@0", "b@1"]

    def test_confident_inputs_use_fewer_features(self):
        dataset = make_dataset(n=200)
        labels = dataset.labels()
        ordered = order_features_by_cost(dataset, dataset.feature_names)
        classifier = IncrementalFeatureExaminationClassifier(
            ordered, posterior_threshold=0.8
        ).fit(dataset, range(150), labels)
        predictions = classifier.predict_rows(dataset, range(150, 200))
        # The informative cheap feature should often be enough, so the mean
        # extraction cost must be far below extracting everything (44).
        assert predictions.extraction_costs.mean() < 20.0
        assert np.mean(predictions.labels == labels[150:200]) > 0.8

    def test_lower_threshold_means_cheaper_classification(self):
        dataset = make_dataset(n=200)
        labels = dataset.labels()
        ordered = order_features_by_cost(dataset, dataset.feature_names)
        eager = IncrementalFeatureExaminationClassifier(ordered, posterior_threshold=0.5).fit(
            dataset, range(150), labels
        )
        cautious = IncrementalFeatureExaminationClassifier(ordered, posterior_threshold=0.999).fit(
            dataset, range(150), labels
        )
        eager_cost = eager.predict_rows(dataset, range(150, 200)).extraction_costs.mean()
        cautious_cost = cautious.predict_rows(dataset, range(150, 200)).extraction_costs.mean()
        assert eager_cost <= cautious_cost

    def test_deployment_variable_cost(self):
        dataset = make_dataset(n=200)
        labels = dataset.labels()
        classifier = IncrementalFeatureExaminationClassifier(
            ["a@0", "b@1"], posterior_threshold=0.75
        ).fit(dataset, range(200), labels)
        label, cost = classifier.classify_input(-3.0, deployment_feature_set())
        assert label in (0, 1)
        assert cost in (pytest.approx(1.0), pytest.approx(31.0))

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            IncrementalFeatureExaminationClassifier([])
        with pytest.raises(ValueError):
            IncrementalFeatureExaminationClassifier(["a@0"], posterior_threshold=0.0)
