"""Tests for the Static Oracle, Dynamic Oracle, and One-Level baselines."""

import numpy as np
import pytest

from repro.core.baselines import DynamicOracle, OneLevelLearning, StaticOracle


class TestStaticOracle:
    def test_picks_best_mean_landmark(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        oracle = StaticOracle().fit(dataset, range(dataset.n_inputs))
        mean_times = dataset.times.mean(axis=0)
        assert oracle.chosen_landmark_ == int(np.argmin(mean_times))

    def test_evaluation_uses_single_landmark(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        oracle = StaticOracle().fit(dataset, training.level2.train_rows)
        evaluation = oracle.evaluate(dataset, training.level2.test_rows)
        assert len(set(evaluation.labels.tolist())) == 1
        assert np.allclose(evaluation.times, evaluation.times_no_extraction)

    def test_unfitted_raises(self, sort_training):
        dataset = sort_training["training"].dataset
        with pytest.raises(RuntimeError):
            StaticOracle().evaluate(dataset, range(4))


class TestDynamicOracle:
    def test_oracle_never_slower_than_any_single_landmark(self, sort_training):
        dataset = sort_training["training"].dataset
        rows = np.arange(dataset.n_inputs)
        oracle_times = DynamicOracle().evaluate(dataset, rows).times
        for j in range(dataset.n_landmarks):
            # For fixed-accuracy programs the oracle picks per-input minima.
            assert np.all(oracle_times <= dataset.times[rows, j] + 1e-9)

    def test_oracle_at_least_as_good_as_static(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        rows = training.level2.test_rows
        static = StaticOracle().fit(dataset, training.level2.train_rows).evaluate(dataset, rows)
        dynamic = DynamicOracle().evaluate(dataset, rows)
        assert dynamic.times.mean() <= static.times.mean() + 1e-9

    def test_satisfaction_reported(self, binpacking_training):
        training = binpacking_training["training"]
        evaluation = DynamicOracle().evaluate(training.dataset, training.level2.test_rows)
        assert 0.0 <= evaluation.satisfaction_rate <= 1.0


class TestOneLevelLearning:
    def test_times_include_full_extraction_cost(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        rows = training.level2.test_rows
        one_level = OneLevelLearning(training.level1).evaluate(dataset, rows)
        expected_extra = dataset.extraction_costs[rows].sum(axis=1)
        assert np.allclose(one_level.times, one_level.times_no_extraction + expected_extra)

    def test_labels_come_from_cluster_landmarks(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        rows = training.level2.test_rows
        one_level = OneLevelLearning(training.level1).evaluate(dataset, rows)
        allowed = set(training.level1.cluster_to_landmark)
        assert set(one_level.labels.tolist()) <= allowed

    def test_one_level_never_beats_dynamic_oracle_in_execution_time(self, sort_training):
        """Without extraction cost, the one-level choice can at best match the
        per-input optimum (for the fixed-accuracy sort benchmark)."""
        training = sort_training["training"]
        dataset = training.dataset
        rows = training.level2.test_rows
        one_level = OneLevelLearning(training.level1).evaluate(dataset, rows)
        dynamic = DynamicOracle().evaluate(dataset, rows)
        assert np.all(one_level.times_no_extraction >= dynamic.times - 1e-9)
