"""Tests for classifier-efficacy scoring and production-classifier selection."""

import numpy as np
import pytest

from repro.core.classifiers import MaxAprioriClassifier, SubsetDecisionTreeClassifier
from repro.core.dataset import PerformanceDataset
from repro.core.selection import (
    ClassifierEvaluation,
    evaluate_classifier,
    rank_classifiers,
    select_production_classifier,
)
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration


def make_dataset(variable_accuracy=False, n=40, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    features = np.column_stack([a, rng.normal(size=n)])
    extraction_costs = np.tile(np.array([2.0, 20.0]), (n, 1))
    times = np.column_stack([np.where(a < 0, 5.0, 50.0), np.where(a < 0, 50.0, 5.0)])
    accuracies = np.ones((n, 2))
    if variable_accuracy:
        accuracies[:, 1] = 0.0  # landmark 1 never meets accuracy
    return PerformanceDataset(
        feature_names=["a@0", "b@0"],
        features=features,
        extraction_costs=extraction_costs,
        times=times,
        accuracies=accuracies,
        landmarks=[Configuration({"id": 0}), Configuration({"id": 1})],
        requirement=AccuracyRequirement(accuracy_threshold=0.5)
        if variable_accuracy
        else AccuracyRequirement.disabled(),
    )


def fake_evaluation(name, cost, valid=True, satisfaction=1.0):
    classifier = MaxAprioriClassifier()
    classifier.description = type(classifier.description)(
        name=name, method="max_apriori", feature_names=()
    )
    return ClassifierEvaluation(
        classifier=classifier,
        performance_cost=cost,
        performance_cost_no_extraction=cost,
        satisfaction_rate=satisfaction,
        valid=valid,
        mean_extraction_cost=0.0,
    )


class TestEvaluateClassifier:
    def test_cost_includes_extraction(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = SubsetDecisionTreeClassifier(["a@0"]).fit(dataset, range(40), labels)
        evaluation = evaluate_classifier(classifier, dataset, range(40))
        assert evaluation.performance_cost == pytest.approx(
            evaluation.performance_cost_no_extraction + 2.0
        )
        assert evaluation.mean_extraction_cost == pytest.approx(2.0)
        assert evaluation.valid

    def test_perfect_classifier_reaches_oracle_cost(self):
        dataset = make_dataset()
        labels = dataset.labels()
        classifier = SubsetDecisionTreeClassifier(["a@0"]).fit(dataset, range(40), labels)
        evaluation = evaluate_classifier(classifier, dataset, range(40))
        assert evaluation.performance_cost_no_extraction == pytest.approx(5.0)

    def test_accuracy_violations_invalidate(self):
        dataset = make_dataset(variable_accuracy=True)
        labels = dataset.labels()  # always 0 (only accurate landmark)
        # A classifier hard-wired to the inaccurate landmark via a constant label:
        classifier = MaxAprioriClassifier().fit(dataset, range(40), np.ones(40, dtype=int))
        evaluation = evaluate_classifier(classifier, dataset, range(40))
        assert evaluation.satisfaction_rate == 0.0
        assert not evaluation.valid
        assert evaluation.effective_cost == float("inf")


class TestSelection:
    def test_picks_cheapest_valid(self):
        best = fake_evaluation("best", 10.0)
        worse = fake_evaluation("worse", 20.0)
        invalid = fake_evaluation("invalid", 1.0, valid=False, satisfaction=0.5)
        assert select_production_classifier([worse, invalid, best]) is best

    def test_falls_back_to_max_satisfaction_when_none_valid(self):
        bad = fake_evaluation("bad", 1.0, valid=False, satisfaction=0.2)
        better = fake_evaluation("better", 5.0, valid=False, satisfaction=0.8)
        assert select_production_classifier([bad, better]) is better

    def test_fallback_breaks_ties_by_cost(self):
        cheap = fake_evaluation("cheap", 1.0, valid=False, satisfaction=0.5)
        pricey = fake_evaluation("pricey", 9.0, valid=False, satisfaction=0.5)
        assert select_production_classifier([pricey, cheap]) is cheap

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_production_classifier([])

    def test_rank_orders_valid_before_invalid(self):
        valid = fake_evaluation("valid", 50.0)
        invalid = fake_evaluation("invalid", 1.0, valid=False, satisfaction=0.9)
        ranked = rank_classifiers([invalid, valid])
        assert ranked[0] is valid
