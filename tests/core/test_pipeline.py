"""Tests for the end-to-end InputAwareLearning pipeline and DeployedProgram."""

import numpy as np
import pytest

from repro.core.pipeline import DeployedProgram, InputAwareLearning, LandmarkMismatchError
from repro.core.level1 import Level1Config
from repro.runtime import RunCache, Runtime, SerialExecutor


class _FixedLabelClassifier:
    """Stub classifier predicting one fixed label (to probe label guards)."""

    name = "fixed"

    def __init__(self, label):
        self.label = label

    def classify_input(self, program_input, features):
        return self.label, 0.25


class TestTrainingResult:
    def test_structure(self, sort_training):
        training = sort_training["training"]
        assert training.dataset.n_inputs == len(sort_training["inputs"])
        assert len(training.landmarks) == training.dataset.n_landmarks
        assert training.production_classifier is training.level2.production.classifier
        assert set(training.train_rows).isdisjoint(set(training.test_rows))

    def test_production_classifier_evaluated_on_test_rows(self, sort_training):
        training = sort_training["training"]
        assert training.level2.production in training.level2.evaluations


class TestDeployedProgram:
    def test_run_produces_correct_output(self, sort_training):
        training = sort_training["training"]
        data = sort_training["inputs"][0]
        outcome = training.deployed.run(data)
        assert np.array_equal(outcome.result.output, np.sort(data))
        assert outcome.total_time == pytest.approx(
            outcome.result.time + outcome.feature_extraction_cost
        )
        assert 0 <= outcome.landmark_index < len(training.landmarks)

    def test_selected_configuration_is_a_landmark(self, sort_training):
        training = sort_training["training"]
        config, index, cost = training.deployed.select_configuration(
            sort_training["inputs"][1]
        )
        assert config == training.landmarks[index]
        assert cost >= 0.0

    def test_deployment_on_unseen_inputs(self, sort_training):
        training = sort_training["training"]
        variant = sort_training["variant"]
        fresh = variant.benchmark.generate_inputs(3, variant.variant, seed=999)
        for data in fresh:
            outcome = training.deployed.run(data)
            assert np.array_equal(outcome.result.output, np.sort(data))

    def test_requires_landmarks(self, sort_training):
        training = sort_training["training"]
        with pytest.raises(ValueError):
            DeployedProgram(training.deployed.program, [], training.production_classifier)


class TestSelectorLabelGuards:
    """Regression tests: out-of-range labels were silently clamped before."""

    def _deployed(self, sort_training, label, runtime=None):
        training = sort_training["training"]
        return DeployedProgram(
            training.deployed.program,
            training.landmarks,
            _FixedLabelClassifier(label),
            runtime=runtime,
        )

    def test_one_off_label_clamps_and_counts(self, sort_training):
        runtime = Runtime(executor=SerialExecutor(), cache=None)
        n = len(sort_training["training"].landmarks)
        deployed = self._deployed(sort_training, n, runtime=runtime)
        config, index, _cost = deployed.select_configuration(sort_training["inputs"][0])
        assert index == n - 1
        assert config == sort_training["training"].landmarks[n - 1]
        assert runtime.telemetry.counters["selector_labels_clamped"] == 1

    def test_negative_one_off_label_clamps_to_zero(self, sort_training):
        runtime = Runtime(executor=SerialExecutor(), cache=None)
        deployed = self._deployed(sort_training, -1, runtime=runtime)
        _config, index, _cost = deployed.select_configuration(sort_training["inputs"][0])
        assert index == 0
        assert runtime.telemetry.counters["selector_labels_clamped"] == 1

    def test_in_range_label_does_not_count(self, sort_training):
        runtime = Runtime(executor=SerialExecutor(), cache=None)
        deployed = self._deployed(sort_training, 0, runtime=runtime)
        deployed.select_configuration(sort_training["inputs"][0])
        assert "selector_labels_clamped" not in runtime.telemetry.counters

    @pytest.mark.parametrize("factor", [2, 3])
    def test_wild_label_raises_mismatch(self, sort_training, factor):
        n = len(sort_training["training"].landmarks)
        deployed = self._deployed(sort_training, factor * n)
        with pytest.raises(LandmarkMismatchError, match="different landmark set"):
            deployed.select_configuration(sort_training["inputs"][0])

    def test_wildly_negative_label_raises_mismatch(self, sort_training):
        n = len(sort_training["training"].landmarks)
        deployed = self._deployed(sort_training, -n)
        with pytest.raises(LandmarkMismatchError):
            deployed.select_configuration(sort_training["inputs"][0])


class TestDeploymentCacheHit:
    def test_cache_hit_flag_round_trip(self, sort_training):
        training = sort_training["training"]
        runtime = Runtime(executor=SerialExecutor(), cache=RunCache())
        deployed = DeployedProgram(
            training.deployed.program,
            training.landmarks,
            training.production_classifier,
            runtime=runtime,
        )
        data = sort_training["inputs"][2]
        first = deployed.run(data)
        second = deployed.run(data)
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert second.result == first.result
        assert second.landmark_index == first.landmark_index

    def test_cacheless_runs_never_report_hits(self, sort_training):
        training = sort_training["training"]
        data = sort_training["inputs"][2]
        assert training.deployed.run(data).cache_hit is False
        assert training.deployed.run(data).cache_hit is False


class TestInputAwareLearningValidation:
    def test_rejects_too_few_inputs(self, sort_training):
        variant = sort_training["variant"]
        learner = InputAwareLearning()
        with pytest.raises(ValueError):
            learner.fit(variant.benchmark.program, variant.benchmark.generate_inputs(2, variant.variant))

    def test_rejects_bad_test_fraction(self):
        with pytest.raises(ValueError):
            InputAwareLearning(test_fraction=1.5)

    def test_variable_accuracy_pipeline_trains(self, binpacking_training):
        training = binpacking_training["training"]
        assert training.dataset.requirement.enabled
        outcome = training.deployed.run(binpacking_training["inputs"][0])
        assert outcome.result.accuracy > 0.0

    def test_custom_level1_config_respected(self, sort_training):
        variant = sort_training["variant"]
        inputs = variant.benchmark.generate_inputs(12, variant.variant, seed=5)
        learner = InputAwareLearning(
            level1_config=Level1Config(n_clusters=2, tuner_generations=1, tuner_population=4),
        )
        training = learner.fit(variant.benchmark.program, inputs)
        assert len(training.level1.cluster_to_landmark) == 2
