"""Tests for the end-to-end InputAwareLearning pipeline and DeployedProgram."""

import numpy as np
import pytest

from repro.core.pipeline import DeployedProgram, InputAwareLearning
from repro.core.level1 import Level1Config


class TestTrainingResult:
    def test_structure(self, sort_training):
        training = sort_training["training"]
        assert training.dataset.n_inputs == len(sort_training["inputs"])
        assert len(training.landmarks) == training.dataset.n_landmarks
        assert training.production_classifier is training.level2.production.classifier
        assert set(training.train_rows).isdisjoint(set(training.test_rows))

    def test_production_classifier_evaluated_on_test_rows(self, sort_training):
        training = sort_training["training"]
        assert training.level2.production in training.level2.evaluations


class TestDeployedProgram:
    def test_run_produces_correct_output(self, sort_training):
        training = sort_training["training"]
        data = sort_training["inputs"][0]
        outcome = training.deployed.run(data)
        assert np.array_equal(outcome.result.output, np.sort(data))
        assert outcome.total_time == pytest.approx(
            outcome.result.time + outcome.feature_extraction_cost
        )
        assert 0 <= outcome.landmark_index < len(training.landmarks)

    def test_selected_configuration_is_a_landmark(self, sort_training):
        training = sort_training["training"]
        config, index, cost = training.deployed.select_configuration(
            sort_training["inputs"][1]
        )
        assert config == training.landmarks[index]
        assert cost >= 0.0

    def test_deployment_on_unseen_inputs(self, sort_training):
        training = sort_training["training"]
        variant = sort_training["variant"]
        fresh = variant.benchmark.generate_inputs(3, variant.variant, seed=999)
        for data in fresh:
            outcome = training.deployed.run(data)
            assert np.array_equal(outcome.result.output, np.sort(data))

    def test_requires_landmarks(self, sort_training):
        training = sort_training["training"]
        with pytest.raises(ValueError):
            DeployedProgram(training.deployed.program, [], training.production_classifier)


class TestInputAwareLearningValidation:
    def test_rejects_too_few_inputs(self, sort_training):
        variant = sort_training["variant"]
        learner = InputAwareLearning()
        with pytest.raises(ValueError):
            learner.fit(variant.benchmark.program, variant.benchmark.generate_inputs(2, variant.variant))

    def test_rejects_bad_test_fraction(self):
        with pytest.raises(ValueError):
            InputAwareLearning(test_fraction=1.5)

    def test_variable_accuracy_pipeline_trains(self, binpacking_training):
        training = binpacking_training["training"]
        assert training.dataset.requirement.enabled
        outcome = training.deployed.run(binpacking_training["inputs"][0])
        assert outcome.result.accuracy > 0.0

    def test_custom_level1_config_respected(self, sort_training):
        variant = sort_training["variant"]
        inputs = variant.benchmark.generate_inputs(12, variant.variant, seed=5)
        learner = InputAwareLearning(
            level1_config=Level1Config(n_clusters=2, tuner_generations=1, tuner_population=4),
        )
        training = learner.fit(variant.benchmark.program, inputs)
        assert len(training.level1.cluster_to_landmark) == 2
