"""Tests for the command-line interface."""

import pytest

from repro.cli import _experiment_config, build_parser, main
from repro.runtime import RunCache


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["figure7"]).command == "figure7"
        args = parser.parse_args(["table1", "--tests", "sort2", "--inputs", "30"])
        assert args.tests == ["sort2"] and args.inputs == 30
        assert parser.parse_args(["train", "svd"]).test == "svd"

    def test_serve_command_parses(self):
        args = build_parser().parse_args(
            ["serve", "--tests", "sort2", "svd", "--port", "0", "--max-pending", "8"]
        )
        assert args.command == "serve"
        assert args.tests == ["sort2", "svd"]
        assert args.port == 0
        assert args.max_pending == 8
        assert args.execution_workers == 1
        # serve shares the scale/runtime flags with train/table1.
        assert _experiment_config(args).n_inputs == args.inputs

    def test_memory_flags_parse_with_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        monkeypatch.delenv("REPRO_STREAM_INPUTS", raising=False)
        args = build_parser().parse_args(["train", "sort2"])
        assert args.cache_max_entries == RunCache.DEFAULT_MAX_ENTRIES
        assert args.stream_inputs is True
        config = _experiment_config(args)
        assert config.cache_max_entries == RunCache.DEFAULT_MAX_ENTRIES
        assert config.stream_inputs is True

    def test_memory_flags_override(self):
        args = build_parser().parse_args(
            ["train", "sort2", "--cache-max-entries", "128", "--no-stream-inputs"]
        )
        config = _experiment_config(args)
        assert config.cache_max_entries == 128
        assert config.stream_inputs is False

    def test_cache_cap_zero_means_unbounded(self):
        args = build_parser().parse_args(["train", "sort2", "--cache-max-entries", "0"])
        assert _experiment_config(args).cache_max_entries is None

    def test_stream_inputs_flag_overrides_env_opt_out(self, monkeypatch):
        """REPRO_STREAM_INPUTS=0 sets the default off, and --stream-inputs
        must still be able to turn streaming back on."""
        monkeypatch.setenv("REPRO_STREAM_INPUTS", "0")
        parser = build_parser()
        assert parser.parse_args(["train", "sort2"]).stream_inputs is False
        args = parser.parse_args(["train", "sort2", "--stream-inputs"])
        assert _experiment_config(args).stream_inputs is True


class TestCommands:
    def test_list_prints_all_tests(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("sort1", "sort2", "binpacking", "helmholtz3d"):
            assert name in output

    def test_figure7_prints_curves(self, capsys):
        assert main(["figure7"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7a" in output and "Figure 7b" in output

    def test_table1_rejects_unknown_test(self, capsys):
        assert main(["table1", "--tests", "bogus"]) == 2

    def test_train_rejects_unknown_test(self, capsys):
        assert main(["train", "bogus"]) == 2

    def test_train_runs_tiny_experiment(self, capsys):
        code = main(
            ["train", "sort2", "--inputs", "24", "--clusters", "3", "--generations", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "production classifier" in output
        assert "dynamic_oracle" in output

    def test_table1_runs_tiny_experiment(self, capsys):
        code = main(
            ["table1", "--tests", "svd", "--inputs", "24", "--clusters", "3", "--generations", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "svd" in output and "Dynamic Oracle" in output
