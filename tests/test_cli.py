"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["figure7"]).command == "figure7"
        args = parser.parse_args(["table1", "--tests", "sort2", "--inputs", "30"])
        assert args.tests == ["sort2"] and args.inputs == 30
        assert parser.parse_args(["train", "svd"]).test == "svd"


class TestCommands:
    def test_list_prints_all_tests(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("sort1", "sort2", "binpacking", "helmholtz3d"):
            assert name in output

    def test_figure7_prints_curves(self, capsys):
        assert main(["figure7"]) == 0
        output = capsys.readouterr().out
        assert "Figure 7a" in output and "Figure 7b" in output

    def test_table1_rejects_unknown_test(self, capsys):
        assert main(["table1", "--tests", "bogus"]) == 2

    def test_train_rejects_unknown_test(self, capsys):
        assert main(["train", "bogus"]) == 2

    def test_train_runs_tiny_experiment(self, capsys):
        code = main(
            ["train", "sort2", "--inputs", "24", "--clusters", "3", "--generations", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "production classifier" in output
        assert "dynamic_oracle" in output

    def test_table1_runs_tiny_experiment(self, capsys):
        code = main(
            ["table1", "--tests", "svd", "--inputs", "24", "--clusters", "3", "--generations", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "svd" in output and "Dynamic Oracle" in output
