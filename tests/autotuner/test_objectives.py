"""Tests for the dual accuracy-then-time tuning objective."""

import pytest

from repro.autotuner.objectives import CandidateEvaluation, TuningObjective
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import Configuration, ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram


def make_program():
    """Cost = 10 / quality; accuracy = quality / 10 (so speed and accuracy conflict)."""
    space = ConfigurationSpace([IntegerParameter("quality", 1, 10)])

    def run(config, _inp):
        charge(100.0 / config["quality"])
        return config["quality"] / 10.0

    return PetaBricksProgram(
        name="tradeoff",
        config_space=space,
        run_func=run,
        accuracy_metric=AccuracyMetric("q", lambda inp, out: out),
        accuracy_requirement=AccuracyRequirement(accuracy_threshold=0.5),
    )


def config(program, quality):
    return Configuration({"quality": quality}, space=program.config_space)


class TestTuningObjective:
    def test_evaluate_records_time_and_accuracy(self):
        program = make_program()
        objective = TuningObjective(program, [None])
        evaluation = objective.evaluate(config(program, 5))
        assert evaluation.mean_time == pytest.approx(20.0)
        assert evaluation.accuracies == (0.5,)
        assert evaluation.meets_accuracy

    def test_infeasible_candidate_flagged(self):
        program = make_program()
        objective = TuningObjective(program, [None])
        evaluation = objective.evaluate(config(program, 2))
        assert not evaluation.meets_accuracy

    def test_best_prefers_feasible_over_faster_infeasible(self):
        program = make_program()
        objective = TuningObjective(program, [None])
        feasible = objective.evaluate(config(program, 5))     # time 20, accurate
        infeasible = objective.evaluate(config(program, 10))  # faster? no: quality 10 -> time 10, accurate
        fast_bad = objective.evaluate(config(program, 1))     # time 100... also inaccurate
        # Make an explicitly infeasible but fast candidate by hand:
        fast_infeasible = CandidateEvaluation(
            config=config(program, 1),
            mean_time=1.0,
            accuracies=(0.1,),
            satisfaction_rate=0.0,
            meets_accuracy=False,
        )
        best = TuningObjective.best([feasible, fast_infeasible])
        assert best is feasible
        best = TuningObjective.best([feasible, infeasible, fast_bad])
        assert best.mean_time == pytest.approx(10.0)

    def test_best_among_feasible_is_fastest(self):
        program = make_program()
        objective = TuningObjective(program, [None])
        slower = objective.evaluate(config(program, 5))
        faster = objective.evaluate(config(program, 10))
        assert TuningObjective.best([slower, faster]) is faster

    def test_counts_evaluations(self):
        program = make_program()
        objective = TuningObjective(program, [None, None, None])
        objective.evaluate(config(program, 5))
        assert objective.evaluations_performed == 3

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            TuningObjective(make_program(), [])

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            TuningObjective.best([])

    def test_fixed_accuracy_program_always_feasible(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 2)])
        program = PetaBricksProgram("fixed", space, lambda c, i: charge(1.0))
        objective = TuningObjective(program, [None])
        evaluation = objective.evaluate(program.default_configuration())
        assert evaluation.meets_accuracy
