"""Tests for the evolutionary autotuner."""

import pytest

from repro.autotuner.evolution import EvolutionaryAutotuner
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import Configuration, ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram


def quadratic_program():
    """Cost = (x - 37)^2 + 1: a single smooth optimum the tuner must find."""
    space = ConfigurationSpace([IntegerParameter("x", 0, 100)])

    def run(config, _inp):
        charge(float((config["x"] - 37) ** 2 + 1))
        return config["x"]

    return PetaBricksProgram("quadratic", space, run)


def accuracy_program():
    """Cost decreases with x but accuracy requires x >= 60."""
    space = ConfigurationSpace([IntegerParameter("x", 0, 100)])

    def run(config, _inp):
        charge(float(config["x"]) + 1.0)
        return config["x"]

    return PetaBricksProgram(
        "accuracy",
        space,
        run,
        accuracy_metric=AccuracyMetric("x", lambda inp, out: out / 100.0),
        accuracy_requirement=AccuracyRequirement(accuracy_threshold=0.6),
    )


class TestEvolutionaryAutotuner:
    def test_finds_near_optimal_configuration(self):
        tuner = EvolutionaryAutotuner(
            population_size=10, offspring_per_generation=10, max_generations=20, seed=0
        )
        result = tuner.tune(quadratic_program(), [None])
        assert abs(result.best_config["x"] - 37) <= 5
        assert result.best.mean_time < 30.0

    def test_improves_over_default(self):
        program = quadratic_program()
        tuner = EvolutionaryAutotuner(max_generations=10, seed=1)
        result = tuner.tune(program, [None])
        default_time = program.run(program.default_configuration(), None).time
        assert result.best.mean_time <= default_time

    def test_history_is_monotone_non_increasing(self):
        tuner = EvolutionaryAutotuner(max_generations=12, seed=2)
        result = tuner.tune(quadratic_program(), [None])
        assert all(b <= a + 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_respects_accuracy_requirement(self):
        tuner = EvolutionaryAutotuner(max_generations=15, seed=3)
        result = tuner.tune(accuracy_program(), [None])
        assert result.best.meets_accuracy
        assert result.best_config["x"] >= 60

    def test_deterministic_given_seed(self):
        tuner_a = EvolutionaryAutotuner(max_generations=8, seed=11)
        tuner_b = EvolutionaryAutotuner(max_generations=8, seed=11)
        assert (
            tuner_a.tune(quadratic_program(), [None]).best_config
            == tuner_b.tune(quadratic_program(), [None]).best_config
        )

    def test_initial_configs_are_seeded(self):
        program = quadratic_program()
        optimum = Configuration({"x": 37}, space=program.config_space)
        tuner = EvolutionaryAutotuner(max_generations=1, stall_generations=1, seed=4)
        result = tuner.tune(program, [None], initial_configs=[optimum])
        assert result.best.mean_time <= 1.0 + 1e-9

    def test_early_stop_on_stall(self):
        tuner = EvolutionaryAutotuner(
            max_generations=100, stall_generations=2, seed=5
        )
        result = tuner.tune(quadratic_program(), [None])
        assert result.generations < 100

    def test_evaluation_count_reported(self):
        tuner = EvolutionaryAutotuner(max_generations=3, stall_generations=99, seed=6)
        result = tuner.tune(quadratic_program(), [None])
        assert result.evaluations > 0

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            EvolutionaryAutotuner(population_size=1)
        with pytest.raises(ValueError):
            EvolutionaryAutotuner(offspring_per_generation=0)
        with pytest.raises(ValueError):
            EvolutionaryAutotuner(max_generations=0)
