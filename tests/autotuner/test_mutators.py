"""Tests for configuration mutation and crossover operators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotuner.mutators import crossover_configurations, mutate_configuration
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)


def make_space():
    return ConfigurationSpace(
        [
            IntegerParameter("cutoff", 1, 100),
            FloatParameter("weight", 0.0, 1.0),
            CategoricalParameter("algo", ["a", "b", "c"]),
        ]
    )


class TestMutation:
    def test_mutation_produces_valid_configuration(self, rng):
        space = make_space()
        config = space.default_configuration()
        for _ in range(100):
            config = mutate_configuration(config, space, rng)
            space.validate(config.as_dict())

    def test_mutation_changes_something_eventually(self, rng):
        space = make_space()
        config = space.default_configuration()
        changed = any(
            mutate_configuration(config, space, rng) != config for _ in range(20)
        )
        assert changed

    def test_empty_space_is_noop(self, rng):
        space = ConfigurationSpace()
        config = Configuration({}, space=space)
        assert mutate_configuration(config, space, rng) == config


class TestCrossover:
    def test_children_are_valid(self, rng):
        space = make_space()
        first = space.sample(rng)
        second = space.sample(rng)
        child_a, child_b = crossover_configurations(first, second, space, rng)
        space.validate(child_a.as_dict())
        space.validate(child_b.as_dict())

    def test_children_values_come_from_parents(self, rng):
        space = make_space()
        first = space.sample(rng)
        second = space.sample(rng)
        child_a, child_b = crossover_configurations(first, second, space, rng)
        for name in space.names():
            parent_values = {first[name], second[name]}
            assert child_a[name] in parent_values
            assert child_b[name] in parent_values

    def test_crossover_conserves_multiset_per_parameter(self, rng):
        space = make_space()
        first = space.sample(rng)
        second = space.sample(rng)
        child_a, child_b = crossover_configurations(first, second, space, rng)
        for name in space.names():
            assert sorted([str(child_a[name]), str(child_b[name])]) == sorted(
                [str(first[name]), str(second[name])]
            )


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 15))
def test_property_mutation_chain_valid(seed, steps):
    """Property: arbitrary chains of mutation and crossover keep configs legal."""
    space = make_space()
    rng = random.Random(seed)
    a, b = space.sample(rng), space.sample(rng)
    for _ in range(steps):
        a = mutate_configuration(a, space, rng)
        a, b = crossover_configurations(a, b, space, rng)
    space.validate(a.as_dict())
    space.validate(b.as_dict())
