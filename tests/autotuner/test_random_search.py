"""Tests for the random-search baseline tuner."""

import pytest

from repro.autotuner.random_search import RandomSearchTuner
from repro.lang.config import Configuration, ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram


def make_program():
    space = ConfigurationSpace([IntegerParameter("x", 0, 50)])

    def run(config, _inp):
        charge(float(config["x"]) + 1.0)
        return None

    return PetaBricksProgram("linear", space, run)


class TestRandomSearchTuner:
    def test_finds_low_cost_configuration(self):
        result = RandomSearchTuner(n_samples=100, seed=0).tune(make_program(), [None])
        assert result.best_config["x"] <= 5

    def test_history_is_monotone(self):
        result = RandomSearchTuner(n_samples=50, seed=1).tune(make_program(), [None])
        assert all(b <= a + 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_seeded_configs_considered(self):
        program = make_program()
        best = Configuration({"x": 0}, space=program.config_space)
        result = RandomSearchTuner(n_samples=1, seed=2).tune(
            program, [None], initial_configs=[best]
        )
        assert result.best_config["x"] == 0

    def test_deterministic_given_seed(self):
        first = RandomSearchTuner(n_samples=20, seed=3).tune(make_program(), [None])
        second = RandomSearchTuner(n_samples=20, seed=3).tune(make_program(), [None])
        assert first.best_config == second.best_config

    def test_bad_args(self):
        with pytest.raises(ValueError):
            RandomSearchTuner(n_samples=0)
