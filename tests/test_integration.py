"""Cross-module integration tests.

These exercise the whole stack -- benchmark construction, Level-1 clustering
and landmark autotuning, Level-2 classifier learning and selection, baseline
evaluation, and deployment -- on deliberately small input sets, asserting the
structural relationships the paper's evaluation relies on.
"""

import numpy as np
import pytest

import repro
from repro.core.baselines import DynamicOracle, OneLevelLearning, StaticOracle


class TestPackageSurface:
    def test_version_and_exports(self):
        assert repro.__version__
        assert hasattr(repro, "InputAwareLearning")
        assert hasattr(repro, "PetaBricksProgram")


class TestEndToEndSort(object):
    def test_training_produces_consistent_dataset(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        assert dataset.times.shape == dataset.accuracies.shape
        assert np.all(dataset.times > 0)
        assert np.all(np.isfinite(dataset.features))

    def test_baseline_ordering_holds(self, sort_training):
        """dynamic oracle <= two-level prediction <= worst landmark, in mean time."""
        training = sort_training["training"]
        dataset = training.dataset
        test_rows = training.level2.test_rows

        dynamic = DynamicOracle().evaluate(dataset, test_rows).times.mean()
        static = (
            StaticOracle()
            .fit(dataset, training.level2.train_rows)
            .evaluate(dataset, test_rows)
            .times.mean()
        )
        production = training.level2.production.performance_cost_no_extraction
        worst = dataset.times[test_rows].max(axis=1).mean()

        assert dynamic <= static + 1e-9
        assert dynamic <= production + 1e-9
        assert production <= worst + 1e-9

    def test_one_level_pays_full_extraction(self, sort_training):
        training = sort_training["training"]
        dataset = training.dataset
        test_rows = training.level2.test_rows
        one_level = OneLevelLearning(training.level1).evaluate(dataset, test_rows)
        two_level_cost = training.level2.production.mean_extraction_cost
        one_level_extraction = (one_level.times - one_level.times_no_extraction).mean()
        assert one_level_extraction >= two_level_cost - 1e-9

    def test_deployment_selects_varied_configurations(self, sort_training):
        """On a mixed input population the deployed classifier should not be
        forced to one configuration unless one truly dominates."""
        training = sort_training["training"]
        selected = {
            training.deployed.select_configuration(data)[1]
            for data in sort_training["inputs"][:12]
        }
        assert len(selected) >= 1  # structural sanity; diversity checked loosely
        assert all(0 <= index < len(training.landmarks) for index in selected)


class TestEndToEndBinPacking:
    def test_variable_accuracy_bookkeeping(self, binpacking_training):
        training = binpacking_training["training"]
        dataset = training.dataset
        assert dataset.requirement.enabled
        assert np.all((dataset.accuracies >= 0.0) & (dataset.accuracies <= 1.0 + 1e-9))

    def test_labels_respect_accuracy_first_rule(self, binpacking_training):
        training = binpacking_training["training"]
        dataset = training.dataset
        labels = dataset.labels()
        threshold = dataset.requirement.accuracy_threshold
        for i in range(dataset.n_inputs):
            accurate = np.flatnonzero(dataset.accuracies[i] >= threshold)
            if accurate.size == 0:
                assert labels[i] == int(np.argmax(dataset.accuracies[i]))
            else:
                chosen = labels[i]
                assert chosen in accurate
                assert dataset.times[i, chosen] == pytest.approx(
                    dataset.times[i, accurate].min()
                )

    def test_production_classifier_validity_or_best_effort(self, binpacking_training):
        training = binpacking_training["training"]
        production = training.level2.production
        best_satisfaction = max(e.satisfaction_rate for e in training.level2.evaluations)
        if not production.valid:
            assert production.satisfaction_rate == pytest.approx(best_satisfaction)

    def test_deployed_packing_is_valid(self, binpacking_training):
        from repro.benchmarks_suite.binpacking.algorithms import packing_is_valid

        training = binpacking_training["training"]
        items = binpacking_training["inputs"][0]
        outcome = training.deployed.run(items)
        assert packing_is_valid(list(items), outcome.result.output)
