"""Tests for the serving layer: protocol, registry, server, coalescing.

The determinism tests are the serving contract in miniature: whatever mix
of concurrency, coalescing, cache recall, and mid-stream hot-swap a client
population throws at the server, every response's measured fields must be
byte-identical to what a sequential ``DeployedProgram.run`` loop produces.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import DeployedProgram
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.serving import (
    ModelRegistry,
    SelectorServer,
    ServerThread,
    ServingClient,
    ServingConfig,
    protocol,
)

from repro.resilience.retry import RetryError, RetryPolicy

#: Test-wait policy: same backoff machinery as production retries (flat
#: 5 ms polls, deadline-bounded) instead of a hand-rolled sleep loop.
WAIT_POLICY = RetryPolicy(
    max_attempts=2000, base_delay=0.005, multiplier=1.0, max_delay=0.005, jitter=0.0
)


def wait_until(predicate, timeout=10.0):
    """Poll a predicate until true (or the timeout runs out)."""
    import dataclasses

    try:
        return bool(
            dataclasses.replace(WAIT_POLICY, deadline=timeout).wait_for(predicate)
        )
    except RetryError:
        return False


class _ZeroClassifier:
    """Stub classifier: always landmark 0, fixed extraction cost."""

    name = "zero"

    def classify_input(self, program_input, features):
        return 0, 0.5


def gated_program(name="gated"):
    """A program whose executions block until the returned gate opens."""
    gate = threading.Event()

    def run(config, program_input):
        gate.wait(timeout=30)
        charge(float(program_input))
        return program_input

    space = ConfigurationSpace([IntegerParameter("x", 1, 4)])
    return PetaBricksProgram(name, space, run), gate


def gated_deployment(name="gated"):
    """A one-landmark deployed program over a gated stub (plus its gate)."""
    program, gate = gated_program(name)
    deployed = DeployedProgram(
        program, [program.default_configuration()], _ZeroClassifier()
    )
    return deployed, gate


@pytest.fixture(scope="module")
def sort_server(sort_training):
    """A running server with the small trained sort selector published."""
    server = SelectorServer()
    server.publish("sort2", sort_training["training"].deployed)
    with ServerThread(server):
        yield server


def connect(server):
    host, port = server.address
    return ServingClient(host, port)


class TestProtocol:
    def test_message_round_trip(self):
        message = {"type": "run", "id": 7, "test": "sort2"}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_rejects_non_object_frames(self):
        with pytest.raises(ValueError):
            protocol.decode_message(b"[1, 2]\n")

    def test_input_spec_builders(self):
        spec = protocol.index_input(12, seed=999, variant="synthetic")
        assert spec == {
            "encoding": "index", "index": 12, "seed": 999, "variant": "synthetic",
        }
        data = [3, 1, 2]
        back = protocol.decode_payload(protocol.pickle_input(data)["payload"])
        assert back == data

    def test_run_request_shape(self):
        message = protocol.run_request(1, "sort2", protocol.index_input(0))
        assert message["type"] == "run"
        assert "want_output" not in message
        assert protocol.run_request(1, "t", {}, want_output=True)["want_output"]

    def test_decode_output(self):
        response = {"output": protocol.encode_payload([1, 2])}
        assert protocol.decode_output(response) == [1, 2]
        assert protocol.decode_output({"type": "result"}) is None


class TestRegistry:
    def test_publish_versions_monotonic(self):
        registry = ModelRegistry()
        deployed, _gate = gated_deployment()
        assert registry.publish("a", deployed).version == 1
        assert registry.publish("a", deployed).version == 2
        assert registry.publish("b", deployed).version == 1
        assert registry.versions() == {"a": 2, "b": 1}
        assert registry.tests() == ["a", "b"]
        assert "a" in registry and len(registry) == 2

    def test_get_unknown_raises_with_choices(self):
        registry = ModelRegistry()
        registry.publish("a", gated_deployment()[0])
        with pytest.raises(KeyError, match="'a'"):
            registry.get("missing")

    def test_rejects_non_deployed_values(self):
        with pytest.raises(TypeError):
            ModelRegistry().publish("a", object())

    def test_concurrent_hot_swap_snapshots_are_complete(self):
        """Readers hammering ``get`` across a publish storm never observe a
        torn entry: every snapshot's deployed program is exactly the one
        published at that snapshot's version, and versions are monotone
        per reader."""
        registry = ModelRegistry()
        n_publishes = 200
        deployments = [gated_deployment(f"v{i}")[0] for i in range(n_publishes)]
        registry.publish("hot", deployments[0])

        errors = []
        stop = threading.Event()
        start = threading.Barrier(9)  # 8 readers + the publisher

        def reader():
            start.wait()
            last_version = 0
            while not stop.is_set():
                entry = registry.get("hot")
                if entry.deployed is not deployments[entry.version - 1]:
                    errors.append(
                        f"torn snapshot: version {entry.version} paired "
                        f"with the wrong deployed program"
                    )
                    return
                if entry.version < last_version:
                    errors.append(
                        f"version went backwards: {last_version} -> "
                        f"{entry.version}"
                    )
                    return
                last_version = entry.version

        def publisher():
            start.wait()
            for index in range(1, n_publishes):
                entry = registry.publish("hot", deployments[index])
                if entry.version != index + 1:
                    errors.append(
                        f"publish {index} returned version {entry.version}"
                    )
            stop.set()

        threads = [threading.Thread(target=reader) for _ in range(8)]
        threads.append(threading.Thread(target=publisher))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        final = registry.get("hot")
        assert final.version == n_publishes
        assert final.deployed is deployments[-1]


class TestServerBasics:
    def test_ping(self, sort_server):
        with connect(sort_server) as client:
            pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["protocol"] == protocol.SERVING_PROTOCOL_VERSION

    def test_unknown_test_is_404(self, sort_server):
        with connect(sort_server) as client:
            response = client.run("nope", protocol.index_input(0))
        assert response["type"] == "error"
        assert response["code"] == protocol.UNKNOWN_TEST

    def test_malformed_frame_is_400(self, sort_server):
        with connect(sort_server) as client:
            client._sock.sendall(b"this is not json\n")
            response = client.recv()
        assert response["type"] == "error"
        assert response["code"] == protocol.BAD_REQUEST

    @pytest.mark.parametrize(
        "spec",
        [
            None,
            {"encoding": "alien"},
            {"encoding": "index"},
            {"encoding": "index", "index": -1},
            {"encoding": "index", "index": 0, "variant": "alien"},
            {"encoding": "pickle"},
            {"encoding": "pickle", "payload": "!!!not-base64!!!"},
        ],
    )
    def test_bad_input_specs_are_400(self, sort_server, spec):
        with connect(sort_server) as client:
            response = client.run("sort2", spec)
        assert response["type"] == "error"
        assert response["code"] == protocol.BAD_REQUEST

    def test_unknown_message_type_is_400(self, sort_server):
        with connect(sort_server) as client:
            response = client.request({"type": "dance"})
        assert response["code"] == protocol.BAD_REQUEST

    def test_run_matches_deployed_run(self, sort_server, sort_training):
        deployed = sort_training["training"].deployed
        data = sort_training["inputs"][0]
        expected = deployed.run(data)
        with connect(sort_server) as client:
            response = client.run("sort2", protocol.pickle_input(data), want_output=True)
        assert response["type"] == "result"
        assert response["landmark"] == expected.landmark_index
        assert response["time"] == expected.result.time
        assert response["accuracy"] == expected.result.accuracy
        assert response["feature_cost"] == expected.feature_extraction_cost
        assert response["total_time"] == expected.total_time
        assert np.array_equal(protocol.decode_output(response), expected.result.output)

    def test_index_input_equals_pickled_input(self, sort_server, sort_training):
        variant = sort_training["variant"]
        data = variant.benchmark.input_source(3, variant.variant, seed=999)[2]
        with connect(sort_server) as client:
            by_index = client.run("sort2", protocol.index_input(2, seed=999))
            by_value = client.run("sort2", protocol.pickle_input(data))
        # Identical content -> identical cache key -> the second is a recall
        # of the first, and every measured field matches exactly.
        assert by_value["cache_hit"] is True
        for field in ("landmark", "time", "accuracy", "feature_cost", "total_time"):
            assert by_index[field] == by_value[field]

    def test_repeat_is_cache_hit(self, sort_server, sort_training):
        data = sort_training["inputs"][1]
        with connect(sort_server) as client:
            first = client.run("sort2", protocol.pickle_input(data))
            second = client.run("sort2", protocol.pickle_input(data))
        assert second["cache_hit"] is True
        assert second["time"] == first["time"]

    def test_stats_snapshot(self, sort_server):
        with connect(sort_server) as client:
            client.run("sort2", protocol.index_input(0))
            stats = client.stats()
        assert stats["type"] == "stats"
        assert stats["models"]["sort2"] >= 1
        assert stats["protocol"] == protocol.SERVING_PROTOCOL_VERSION
        counters = stats["runtime"]["telemetry"]["counters"]
        assert counters["serve_requests"] >= 1
        latencies = stats["runtime"]["telemetry"]["latencies"]
        assert latencies["serve.selection"]["count"] >= 1
        assert latencies["serve.request"]["p99_seconds"] >= 0.0

    def test_response_latency_split_present(self, sort_server, sort_training):
        with connect(sort_server) as client:
            response = client.run(
                "sort2", protocol.pickle_input(sort_training["inputs"][3])
            )
        assert response["selection_seconds"] >= 0.0
        assert response["execution_seconds"] >= 0.0
        assert response["model_version"] >= 1


class TestCoalescing:
    def test_identical_inflight_requests_share_one_execution(self):
        deployed, gate = gated_deployment("coalesce")
        server = SelectorServer()
        server.publish("gated", deployed)
        with ServerThread(server):
            with connect(server) as a, connect(server) as b:
                a.send(protocol.run_request(1, "gated", protocol.pickle_input(7)))
                assert wait_until(lambda: len(server._inflight) == 1)
                b.send(protocol.run_request(2, "gated", protocol.pickle_input(7)))
                assert wait_until(
                    lambda: server.telemetry.counters.get("serve_coalesced", 0) == 1
                )
                gate.set()
                first, second = a.recv(), b.recv()
        assert first["type"] == second["type"] == "result"
        assert first["coalesced"] is False
        assert second["coalesced"] is True
        assert second["time"] == first["time"]
        assert server.telemetry.counters["runs_executed"] == 1
        assert server.telemetry.counters["serve_executions"] == 1

    def test_sequential_repeat_is_recall_not_join(self):
        deployed, gate = gated_deployment("recall")
        gate.set()  # executions never block
        server = SelectorServer()
        server.publish("gated", deployed)
        with ServerThread(server):
            with connect(server) as client:
                first = client.run("gated", protocol.pickle_input(3))
                second = client.run("gated", protocol.pickle_input(3))
        assert first["cache_hit"] is False and first["coalesced"] is False
        assert second["cache_hit"] is True and second["coalesced"] is False
        assert server.telemetry.counters["runs_executed"] == 1


class TestBackpressure:
    def test_distinct_overflow_request_is_503(self):
        deployed, gate = gated_deployment("overload")
        server = SelectorServer(config=ServingConfig(max_pending=1))
        server.publish("gated", deployed)
        with ServerThread(server):
            with connect(server) as a, connect(server) as b:
                a.send(protocol.run_request(1, "gated", protocol.pickle_input(1)))
                assert wait_until(lambda: len(server._inflight) == 1)
                rejected = b.run("gated", protocol.pickle_input(2))
                # A coalescable duplicate adds no execution: always admitted.
                b.send(protocol.run_request(3, "gated", protocol.pickle_input(1)))
                assert wait_until(
                    lambda: server.telemetry.counters.get("serve_coalesced", 0) == 1
                )
                gate.set()
                admitted = a.recv()
                joined = b.recv()
        assert rejected["type"] == "error"
        assert rejected["code"] == protocol.OVERLOADED
        assert admitted["type"] == "result"
        assert joined["type"] == "result" and joined["coalesced"] is True
        assert server.telemetry.counters["serve_rejected"] == 1

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            SelectorServer(config=ServingConfig(max_pending=0))


class TestHotSwap:
    def test_swap_bumps_version_atomically(self, sort_training):
        deployed = sort_training["training"].deployed
        server = SelectorServer()
        server.publish("sort2", deployed)
        with ServerThread(server):
            with connect(server) as client:
                before = client.run("sort2", protocol.index_input(0))
                swapped = client.swap("sort2", deployed)
                after = client.run("sort2", protocol.index_input(0))
        assert swapped == {"type": "swapped", "id": None, "test": "sort2", "version": 2}
        assert before["model_version"] == 1
        assert after["model_version"] == 2
        # Identically retrained model -> byte-identical measurements.
        assert after["time"] == before["time"]
        assert after["landmark"] == before["landmark"]

    def test_swap_without_payload_is_400(self, sort_server):
        with connect(sort_server) as client:
            response = client.request({"type": "swap", "test": "sort2"})
        assert response["code"] == protocol.BAD_REQUEST

    def test_swap_with_garbage_payload_is_400(self, sort_server):
        with connect(sort_server) as client:
            response = client.request(
                {"type": "swap", "test": "sort2",
                 "payload": protocol.encode_payload(object())}
            )
        assert response["code"] == protocol.BAD_REQUEST


RESULT_FIELDS = ("landmark", "time", "accuracy", "feature_cost", "total_time")


class TestConcurrentDeterminism:
    """N parallel clients with overlapping inputs == the sequential loop."""

    def _sequential_baseline(self, sort_training, inputs):
        deployed = sort_training["training"].deployed
        expected = {}
        for i, data in enumerate(inputs):
            outcome = deployed.run(data)
            expected[i] = {
                "landmark": outcome.landmark_index,
                "time": outcome.result.time,
                "accuracy": outcome.result.accuracy,
                "feature_cost": outcome.feature_extraction_cost,
                "total_time": outcome.total_time,
            }
        return expected

    def _replay(self, server, schedule, swap_with=None):
        """Run per-client input schedules concurrently; collect responses."""
        results = [dict() for _ in schedule]
        errors = []

        def worker(slot):
            try:
                with connect(server) as client:
                    for i, data in schedule[slot]:
                        results[slot][i] = client.run(
                            "sort2", protocol.pickle_input(data)
                        )
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(len(schedule))
        ]
        for thread in threads:
            thread.start()
        if swap_with is not None:
            with connect(server) as control:
                swapped = control.swap("sort2", swap_with)
                assert swapped["type"] == "swapped"
        for thread in threads:
            thread.join()
        assert not errors, errors
        return results

    def test_parallel_overlapping_clients_match_sequential(self, sort_training):
        variant = sort_training["variant"]
        inputs = variant.benchmark.generate_inputs(6, variant.variant, seed=321)
        expected = self._sequential_baseline(sort_training, inputs)

        server = SelectorServer()
        server.publish("sort2", sort_training["training"].deployed)
        # Every client replays every input, in a client-specific order, so
        # each input is requested 4 times across overlapping connections.
        schedule = [
            [(i, inputs[i]) for i in order]
            for order in ([0, 1, 2, 3, 4, 5], [5, 4, 3, 2, 1, 0],
                          [2, 0, 4, 1, 5, 3], [3, 5, 1, 4, 0, 2])
        ]
        with ServerThread(server):
            results = self._replay(server, schedule)
        for per_client in results:
            for i, response in per_client.items():
                assert response["type"] == "result"
                for field in RESULT_FIELDS:
                    assert response[field] == expected[i][field], (i, field)
        # 24 requests, 6 unique inputs: at most 6 executions happened.
        assert server.telemetry.counters["runs_executed"] <= len(inputs)

    def test_determinism_survives_mid_stream_hot_swap(self, sort_training):
        variant = sort_training["variant"]
        inputs = variant.benchmark.generate_inputs(5, variant.variant, seed=654)
        expected = self._sequential_baseline(sort_training, inputs)

        server = SelectorServer()
        server.publish("sort2", sort_training["training"].deployed)
        schedule = [
            [(i, inputs[i]) for i in order]
            for order in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0], [2, 4, 0, 3, 1])
        ]
        with ServerThread(server):
            # Swap in the identically trained model while clients stream.
            results = self._replay(
                server, schedule, swap_with=sort_training["training"].deployed
            )
            assert server.registry.get("sort2").version == 2
        for per_client in results:
            for i, response in per_client.items():
                assert response["type"] == "result"
                assert response["model_version"] in (1, 2)
                for field in RESULT_FIELDS:
                    assert response[field] == expected[i][field], (i, field)
