"""Tests for the serving load generator (trace shape + measured metrics)."""

import pytest

from repro.serving import build_trace, run_load
from repro.serving.server import ServingConfig

# Everything here touches real sockets; connect races retry inside
# ServingClient's RetryPolicy (see repro.resilience.retry).

class TestBuildTrace:
    def test_covers_every_unique_index(self):
        trace = build_trace(16, 5, seed=3)
        assert len(trace) == 16
        assert set(trace) == set(range(5))

    def test_deterministic_per_seed(self):
        assert build_trace(32, 8, seed=1) == build_trace(32, 8, seed=1)
        assert build_trace(32, 8, seed=1) != build_trace(32, 8, seed=2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            build_trace(4, 5)
        with pytest.raises(ValueError):
            build_trace(4, 0)


class TestRunLoad:
    def test_duplicate_heavy_trace_executes_each_unique_once(self, sort_training):
        metrics = run_load(
            "sort2",
            sort_training["training"].deployed,
            requests=12,
            unique_inputs=4,
            clients=2,
            trace_seed=0,
            input_seed=777,
            config=ServingConfig(max_pending=16),
        )
        assert metrics["requests"] == 12
        assert metrics["duplicate_fraction"] >= 0.5
        assert metrics["each_unique_executed_at_most_once"] is True
        assert metrics["executions"] <= 4
        assert metrics["rejected"] == 0
        # Every request is exactly one of: fresh execution, coalesced join,
        # or run-cache recall.
        assert (
            metrics["executions"] + metrics["coalesced"] + metrics["cache_hits"]
            == metrics["requests"]
        )
        assert metrics["throughput_rps"] > 0.0
        assert metrics["selection_p99_ms"] >= metrics["selection_p50_ms"] >= 0.0
        assert metrics["request_p99_ms"] >= metrics["request_p50_ms"] > 0.0
