"""Streaming (chunked) batch dispatch: determinism and memory shape.

The acceptance bar for the 50k-input-regime work: setting
``Runtime.batch_chunk`` (or ``ExperimentConfig.batch_chunk`` /
``--batch-chunk``) must change *nothing* about the results -- the full
experiment pipeline and the Level-2 search are bit-identical with and
without chunking, under every executor -- while bounding the transient
footprint of a measurement batch by O(chunk).
"""

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.core.level2 import Level2Config, run_level2
from repro.core.synthetic import synthetic_level2_dataset
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.runtime import RunCache, Runtime

METHODS = ("static_oracle", "dynamic_oracle", "two_level", "one_level")


def tiny_config(executor: str, **overrides) -> ExperimentConfig:
    settings = dict(
        n_inputs=24,
        n_clusters=3,
        tuner_generations=2,
        tuner_population=5,
        tuning_neighbors=2,
        max_subsets=12,
        seed=0,
        executor=executor,
        workers=2,
        batch_chunk=None,
        stream_inputs=False,
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


@pytest.fixture(scope="module")
def unchunked_result():
    return run_experiment("sort1", tiny_config("serial"))


class TestExperimentStreamingDeterminism:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_chunked_run_is_bit_identical(self, unchunked_result, executor):
        """batch_chunk=7 (deliberately not dividing anything evenly)."""
        result = run_experiment("sort1", tiny_config(executor, batch_chunk=7))
        assert result.runtime_stats["executor"] == executor
        assert "executor_fallback" not in result.runtime_stats
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, unchunked_result.methods[method].times
            )
            np.testing.assert_array_equal(
                result.speedups_over_static(method),
                unchunked_result.speedups_over_static(method),
            )
            assert result.satisfaction(method) == unchunked_result.satisfaction(method)
        assert result.training.landmarks == unchunked_result.training.landmarks

    def test_chunk_of_one_is_bit_identical(self, unchunked_result):
        """The degenerate chunk size exercises every chunk boundary."""
        result = run_experiment("sort1", tiny_config("serial", batch_chunk=1))
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, unchunked_result.methods[method].times
            )

    def test_telemetry_totals_match_unchunked(self, unchunked_result):
        result = run_experiment("sort1", tiny_config("serial", batch_chunk=5))
        for counter in ("runs_requested", "runs_executed", "tasks_requested"):
            assert (
                result.runtime_stats["telemetry"]["counters"][counter]
                == unchunked_result.runtime_stats["telemetry"]["counters"][counter]
            )


class TestStreamedInputDeterminism:
    """A streamed ``InputSource`` must change nothing but peak memory.

    The acceptance bar of the input-streaming work: a run fed a lazy input
    source (``stream_inputs=True``) produces bit-identical
    ``PerformanceDataset`` arrays and selector output to the
    materialized-list path, on every executor, with and without chunking
    and the LRU cache cap.
    """

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_streamed_run_is_bit_identical(self, unchunked_result, executor):
        result = run_experiment(
            "sort1", tiny_config(executor, stream_inputs=True, batch_chunk=7)
        )
        assert "executor_fallback" not in result.runtime_stats
        baseline_dataset = unchunked_result.training.dataset
        dataset = result.training.dataset
        for matrix in ("features", "extraction_costs", "times", "accuracies"):
            np.testing.assert_array_equal(
                getattr(dataset, matrix), getattr(baseline_dataset, matrix)
            )
        assert result.training.landmarks == unchunked_result.training.landmarks
        assert (
            result.training.production_classifier.name
            == unchunked_result.training.production_classifier.name
        )
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, unchunked_result.methods[method].times
            )
            assert result.satisfaction(method) == unchunked_result.satisfaction(method)

    def test_streamed_run_with_capped_cache_is_bit_identical(self, unchunked_result):
        result = run_experiment(
            "sort1",
            tiny_config(
                "serial", stream_inputs=True, batch_chunk=5, cache_max_entries=16
            ),
        )
        assert result.runtime_stats["cache"]["evictions"] > 0
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, unchunked_result.methods[method].times
            )

    def test_streamed_telemetry_attributes_generation(self):
        """Streaming moves generation cost out of ``generate_inputs`` into a
        per-materialization ``inputs.generate`` phase, and counts chunks."""
        result = run_experiment(
            "sort1", tiny_config("serial", stream_inputs=True, batch_chunk=7)
        )
        telemetry = result.runtime_stats["telemetry"]
        assert "generate_inputs" not in telemetry["phases"]
        generate = telemetry["phases"]["inputs.generate"]
        assert generate["calls"] == telemetry["counters"]["inputs_generated"] > 0
        assert telemetry["counters"]["chunks_dispatched"] > 0

    def test_materialized_telemetry_keeps_legacy_phase(self, unchunked_result):
        telemetry = unchunked_result.runtime_stats["telemetry"]
        assert "generate_inputs" in telemetry["phases"]
        assert "inputs_generated" not in telemetry["counters"]

    def test_streamed_dataset_carries_lazy_source(self):
        from repro.core.inputs import InputSource

        result = run_experiment("sort1", tiny_config("serial", stream_inputs=True))
        dataset = result.training.dataset
        assert isinstance(dataset.inputs, InputSource)
        # The source still behaves like the input list consumers expect.
        assert len(dataset.inputs) == 24
        assert dataset.subset([3, 1]).inputs is not None

    def test_streamed_dataset_ships_to_workers_without_inputs(self):
        """The view task batches share with executor workers must drop the
        lazy source (its observer closure cannot cross a spawn boundary)
        and must be identity-stable so the process pool is reused."""
        import pickle

        result = run_experiment("sort1", tiny_config("serial", stream_inputs=True))
        dataset = result.training.dataset
        shipped = dataset.without_inputs()
        assert shipped.inputs is None
        assert shipped is dataset.without_inputs()  # memoized
        assert shipped.features is dataset.features  # matrices shared, not copied
        pickle.dumps(shipped)  # the closure-bearing source never rides along

    def test_measure_materializes_each_input_once(self):
        """Input-major enumeration: a lazy source costs N materializations
        per matrix, not N x K, chunked or not."""
        from repro.benchmarks_suite.sort import generators
        from repro.core.inputs import GeneratedInputSource

        variant = get_benchmark("sort1")
        program = variant.benchmark.program
        calls = []

        def tracked(index, seed):
            calls.append(index)
            return generators.real_world_item(index, seed)

        import random

        rng = random.Random(0)
        configs = [program.default_configuration()] + [
            program.config_space.sample(rng) for _ in range(2)
        ]
        for chunk in (None, 4):
            calls.clear()
            measured = Runtime(batch_chunk=chunk).measure(
                program, configs, GeneratedInputSource(6, 0, tracked)
            )
            assert measured["times"].shape == (6, 3)
            assert calls == list(range(6))


class TestLevel2StreamingDeterminism:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_chunked_search_selects_identical_production(self, executor):
        dataset = synthetic_level2_dataset(n=40, seed=3)
        rows = np.arange(40)
        train_rows, test_rows = rows[:28], rows[28:]
        config = Level2Config(max_subsets=12, seed=0)

        baseline = run_level2(dataset, train_rows, test_rows, config=config)
        with Runtime.create(executor=executor, workers=2, batch_chunk=3) as runtime:
            chunked = run_level2(
                dataset, train_rows, test_rows, config=config, runtime=runtime
            )
        assert (
            chunked.production.classifier.name == baseline.production.classifier.name
        )
        assert chunked.production.performance_cost == baseline.production.performance_cost
        assert [e.performance_cost for e in chunked.evaluations] == [
            e.performance_cost for e in baseline.evaluations
        ]
        np.testing.assert_array_equal(chunked.labels, baseline.labels)


class TestIterPairsStreaming:
    def make_program(self):
        variant = get_benchmark("sort1")
        return variant, variant.benchmark.program

    def test_iter_pairs_consumes_lazily(self):
        """The pair iterator is drained chunk by chunk, never materialized."""
        variant, program = self.make_program()
        inputs = variant.benchmark.generate_inputs(8, variant.variant, seed=0)
        config = program.default_configuration()
        consumed = []

        def pair_gen():
            for program_input in inputs:
                consumed.append(len(consumed))
                yield (config, program_input)

        runtime = Runtime(batch_chunk=3)
        iterator = runtime.iter_pairs(program, pair_gen())
        first = next(iterator)
        assert first.time > 0
        # Only the first chunk's pairs have been pulled so far.
        assert len(consumed) == 3
        rest = list(iterator)
        assert len(rest) == 7
        assert len(consumed) == 8

    def test_measure_identical_with_and_without_chunking(self):
        variant, program = self.make_program()
        inputs = variant.benchmark.generate_inputs(10, variant.variant, seed=0)
        configs = [program.default_configuration()]
        import random

        rng = random.Random(0)
        configs += [program.config_space.sample(rng) for _ in range(2)]

        plain = Runtime().measure(program, configs, inputs)
        chunked = Runtime(batch_chunk=4).measure(program, configs, inputs)
        cached_chunked = Runtime(cache=RunCache(), batch_chunk=4).measure(
            program, configs, inputs
        )
        np.testing.assert_array_equal(plain["times"], chunked["times"])
        np.testing.assert_array_equal(plain["accuracies"], chunked["accuracies"])
        np.testing.assert_array_equal(plain["times"], cached_chunked["times"])

    def test_duplicate_pairs_across_chunks_hit_cache(self):
        variant, program = self.make_program()
        inputs = variant.benchmark.generate_inputs(2, variant.variant, seed=0)
        config = program.default_configuration()
        runtime = Runtime(cache=RunCache(), batch_chunk=2)
        # Four copies of the same pair, split across two chunks: the second
        # chunk must be answered by the cache entries the first chunk filled.
        results = runtime.run_pairs(program, [(config, inputs[0])] * 4)
        assert len({r.time for r in results}) == 1
        assert runtime.telemetry.runs_executed == 1
        assert runtime.telemetry.cache_hits == 3

    def test_invalid_batch_chunk_rejected(self):
        with pytest.raises(ValueError):
            Runtime(batch_chunk=0)
