"""Unit tests for the generalized task layer (TaskSpec/TaskCache/run_tasks)."""

import numpy as np
import pytest

from repro.runtime import Runtime, TaskCache, TaskSpec, content_key, get_executor
from repro.runtime.tasks import is_missing


def double(x):
    return 2 * x


def combine(x, y=0):
    return x + y


def make_array(n):
    return np.arange(n)


class TestTaskSpec:
    def test_call_applies_args_and_kwargs(self):
        assert TaskSpec(fn=combine, args=(3,), kwargs={"y": 4}).call() == 7

    def test_defaults(self):
        spec = TaskSpec(fn=double, args=(1,))
        assert spec.key is None
        assert spec.label == ""


class TestTaskCache:
    def test_round_trip_and_stats(self):
        cache = TaskCache()
        assert is_missing(cache.get("a"))
        cache.put("a", 123)
        assert cache.get("a") == 123
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}

    def test_none_is_a_legitimate_value(self):
        cache = TaskCache()
        cache.put("a", None)
        value = cache.get("a")
        assert value is None
        assert not is_missing(value)

    def test_lru_eviction(self):
        cache = TaskCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TaskCache(max_entries=0)


class TestRunTasks:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_in_submission_order(self, executor):
        runtime = Runtime.create(executor=executor, workers=2, use_cache=False)
        specs = [TaskSpec(fn=double, args=(i,)) for i in range(10)]
        assert runtime.run_tasks(specs) == [2 * i for i in range(10)]
        runtime.close()

    def test_keyed_tasks_deduplicate_within_batch(self):
        runtime = Runtime.create(executor="serial")
        specs = [TaskSpec(fn=double, args=(7,), key="k") for _ in range(5)]
        assert runtime.run_tasks(specs) == [14] * 5
        assert runtime.telemetry.tasks_executed == 1
        assert runtime.telemetry.task_cache_hits == 4

    def test_keyed_tasks_hit_cache_across_batches(self):
        runtime = Runtime.create(executor="serial")
        spec = TaskSpec(fn=double, args=(7,), key="k")
        runtime.run_tasks([spec])
        runtime.run_tasks([spec])
        assert runtime.telemetry.tasks_requested == 2
        assert runtime.telemetry.tasks_executed == 1
        assert runtime.stats()["task_cache"]["entries"] == 1

    def test_unkeyed_tasks_always_execute(self):
        runtime = Runtime.create(executor="serial")
        spec = TaskSpec(fn=double, args=(7,))
        runtime.run_tasks([spec])
        runtime.run_tasks([spec])
        assert runtime.telemetry.tasks_executed == 2

    def test_cache_disabled_runtime_has_no_task_cache(self):
        runtime = Runtime.create(executor="serial", use_cache=False)
        assert runtime.task_cache is None
        spec = TaskSpec(fn=double, args=(7,), key="k")
        runtime.run_tasks([spec])
        runtime.run_tasks([spec])
        assert runtime.telemetry.tasks_executed == 2

    def test_phase_is_timed(self):
        runtime = Runtime.create(executor="serial")
        runtime.run_tasks([TaskSpec(fn=double, args=(1,))], phase="unit.phase")
        assert runtime.telemetry.phases["unit.phase"].calls == 1

    def test_numpy_results_survive_process_round_trip(self):
        runtime = Runtime.create(executor="process", workers=2, use_cache=False)
        results = runtime.run_tasks([TaskSpec(fn=make_array, args=(4,))] * 3)
        for result in results:
            np.testing.assert_array_equal(result, np.arange(4))
        runtime.close()

    def test_process_falls_back_serially_on_unpicklable_task(self):
        runtime = Runtime.create(executor="process", workers=2, use_cache=False)
        closure = lambda: 41 + 1  # noqa: E731 - deliberately unpicklable
        assert runtime.run_tasks([TaskSpec(fn=closure), TaskSpec(fn=closure)]) == [42, 42]
        assert "not picklable" in runtime.stats()["executor_fallback"]
        runtime.close()


class TestExecutorRunCalls:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_empty_batch(self, executor):
        ex = get_executor(executor, workers=2)
        assert ex.run_calls([]) == []
        ex.close()

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        ex = get_executor("thread", workers=2)
        with pytest.raises(RuntimeError, match="task failed"):
            ex.run_calls([(boom, (), {}), (boom, (), {})])
        ex.close()


class TestContentKey:
    def test_stable_across_calls(self):
        assert content_key("a", 1, np.arange(3)) == content_key("a", 1, np.arange(3))

    def test_distinguishes_values(self):
        assert content_key("a", 1) != content_key("a", 2)
        assert content_key(np.arange(3)) != content_key(np.arange(4))
