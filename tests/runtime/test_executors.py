"""Tests for the serial / thread-pool / process-pool executors."""

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    SharedRef,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.executors import _call_chunksize


@pytest.fixture(scope="module")
def sort_setup():
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(6, variant.variant, seed=0)
    configs = [program.default_configuration()]
    import random

    configs.append(program.config_space.sample(random.Random(7)))
    tasks = [(config, program_input) for config in configs for program_input in inputs]
    return program, tasks


def reference_results(program, tasks):
    return SerialExecutor().run_batch(program, tasks)


class TestSerialExecutor:
    def test_matches_direct_runs(self, sort_setup):
        program, tasks = sort_setup
        results = SerialExecutor().run_batch(program, tasks)
        for (config, program_input), result in zip(tasks, results):
            direct = program.run(config, program_input)
            assert result.time == direct.time
            assert result.accuracy == direct.accuracy

    def test_empty_batch(self, sort_setup):
        program, _ = sort_setup
        assert SerialExecutor().run_batch(program, []) == []


class TestThreadExecutor:
    def test_matches_serial(self, sort_setup):
        program, tasks = sort_setup
        expected = reference_results(program, tasks)
        with ThreadExecutor(workers=4) as executor:
            results = executor.run_batch(program, tasks)
        assert [r.time for r in results] == [r.time for r in expected]
        assert [r.accuracy for r in results] == [r.accuracy for r in expected]

    def test_cost_accounting_isolated_per_run(self, sort_setup):
        """Concurrent runs must not leak charges into each other's counters."""
        space = ConfigurationSpace([IntegerParameter("units", 1, 1000)])

        def run(config, _input):
            charge(float(config["units"]))
            return config["units"]

        program = PetaBricksProgram("charger", space, run)
        tasks = [
            (program.default_configuration().with_updates(units=units), None)
            for units in range(1, 201)
        ]
        with ThreadExecutor(workers=8) as executor:
            results = executor.run_batch(program, tasks)
        assert [r.time for r in results] == [float(u) for u in range(1, 201)]

    def test_single_task_runs_inline(self, sort_setup):
        program, tasks = sort_setup
        executor = ThreadExecutor(workers=2)
        results = executor.run_batch(program, tasks[:1])
        assert len(results) == 1
        assert executor._pool is None  # no pool spun up for one task
        executor.close()


class TestProcessExecutor:
    def test_matches_serial(self, sort_setup):
        program, tasks = sort_setup
        expected = reference_results(program, tasks)
        with ProcessExecutor(workers=2) as executor:
            results = executor.run_batch(program, tasks)
            assert executor.fallback_reason is None
        assert [r.time for r in results] == [r.time for r in expected]
        assert [r.accuracy for r in results] == [r.accuracy for r in expected]

    def test_falls_back_to_serial_on_unpicklable_program(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])
        # A lambda run function cannot be pickled into worker processes.
        program = PetaBricksProgram(
            "local", space, lambda config, _input: charge(float(config["x"]))
        )
        tasks = [(program.default_configuration(), None)] * 3
        with ProcessExecutor(workers=2) as executor:
            results = executor.run_batch(program, tasks)
            assert executor.fallback_reason is not None
            assert "not picklable" in executor.fallback_reason
        assert [r.time for r in results] == [3.0, 3.0, 3.0]

    def test_pool_reused_across_batches(self, sort_setup):
        program, tasks = sort_setup
        with ProcessExecutor(workers=2) as executor:
            executor.run_batch(program, tasks[:3])
            pool = executor._pool
            executor.run_batch(program, tasks[3:6])
            assert executor._pool is pool


def _scaled_sum(values, factor):
    """Module-level so process pools can pickle it."""
    return float(sum(values)) * factor


def _kill_pid(pid):
    """SIGKILL a process (module-level so pools can ship it)."""
    import os
    import signal

    os.kill(pid, signal.SIGKILL)


class TestProcessPoolRecovery:
    """Satellite fix: a broken pool is torn down and rebuilt, not kept.

    A worker that dies while the pool is idle leaves the
    ``ProcessPoolExecutor`` permanently broken; the next submission raises
    ``BrokenProcessPool``.  Before the fix that exception escaped (or the
    dead pool object was reused forever); now the executor rebuilds the
    pool -- re-registering the program / shared-argument initializers --
    and the batch succeeds.
    """

    def _kill_one_worker(self, executor):
        pool = executor._pool
        assert pool is not None
        victim = next(iter(pool._processes.values()))
        _kill_pid(victim.pid)
        victim.join(timeout=10)
        assert not victim.is_alive()

    def test_run_batch_survives_worker_killed_between_batches(self, sort_setup):
        program, tasks = sort_setup
        expected = reference_results(program, tasks)
        with ProcessExecutor(workers=2) as executor:
            executor.run_batch(program, tasks[:3])
            broken_pool = executor._pool
            self._kill_one_worker(executor)
            results = executor.run_batch(program, tasks)
            assert [r.time for r in results] == [r.time for r in expected]
            assert [r.accuracy for r in results] == [r.accuracy for r in expected]
            # The dead pool must not be the one serving later batches.
            assert executor._pool is not broken_pool
            follow_up = executor.run_batch(program, tasks[:3])
            assert [r.time for r in follow_up] == [r.time for r in expected[:3]]

    def test_run_calls_rebuild_reregisters_shared_initializer(self):
        shared = {"payload": list(range(50))}
        calls = [
            (_scaled_sum, (SharedRef("payload"), float(f)), {}) for f in range(1, 4)
        ]
        expected = [float(sum(range(50))) * f for f in range(1, 4)]
        with ProcessExecutor(workers=2) as executor:
            assert executor.run_calls(calls, shared=shared) == expected
            broken_pool = executor._pool
            self._kill_one_worker(executor)
            # The rebuilt pool's workers must hold the shared registry again
            # (the initializer is re-registered), or refs would not resolve.
            assert executor.run_calls(calls, shared=shared) == expected
            assert executor._pool is not broken_pool


class TestSharedArgs:
    """SharedRef arguments resolve identically on every executor."""

    PAYLOAD = list(range(100))
    CALLS = [
        (_scaled_sum, (SharedRef("payload"), float(factor)), {})
        for factor in range(1, 6)
    ]
    EXPECTED = [float(sum(range(100))) * f for f in range(1, 6)]

    def test_serial_resolves_refs(self):
        shared = {"payload": self.PAYLOAD}
        assert SerialExecutor().run_calls(self.CALLS, shared=shared) == self.EXPECTED

    def test_thread_resolves_refs(self):
        shared = {"payload": self.PAYLOAD}
        with ThreadExecutor(workers=2) as executor:
            assert executor.run_calls(self.CALLS, shared=shared) == self.EXPECTED

    def test_process_resolves_refs_via_pool_registry(self):
        shared = {"payload": self.PAYLOAD}
        with ProcessExecutor(workers=2) as executor:
            assert executor.run_calls(self.CALLS, shared=shared) == self.EXPECTED
            assert executor.fallback_reason is None

    def test_process_pool_reused_for_same_shared_object(self):
        shared = {"payload": self.PAYLOAD}
        with ProcessExecutor(workers=2) as executor:
            executor.run_calls(self.CALLS, shared=shared)
            pool = executor._pool
            executor.run_calls(self.CALLS, shared=shared)
            assert executor._pool is pool  # same object -> no reinitialization
            # A different object under the same token must NOT reuse the
            # stale registry.
            executor.run_calls(
                [(_scaled_sum, (SharedRef("payload"), 1.0), {})],
                shared={"payload": list(range(10))},
            )
            assert executor._pool is not pool

    def test_kwarg_refs_resolve_too(self):
        def _kw(factor, values=None):
            return float(sum(values)) * factor

        calls = [(_kw, (2.0,), {"values": SharedRef("payload")})]
        assert SerialExecutor().run_calls(calls, shared={"payload": [1, 2, 3]}) == [12.0]

    def test_kwarg_refs_resolve_in_workers(self):
        calls = [(_scaled_kwargs, (2.0,), {"values": SharedRef("payload")})]
        with ProcessExecutor(workers=2) as executor:
            assert executor.run_calls(calls, shared={"payload": [1, 2, 3]}) == [12.0]
            assert executor.fallback_reason is None


def _scaled_kwargs(factor, values=None):
    """Module-level so process pools can pickle it."""
    return float(sum(values)) * factor


class TestCallChunksize:
    """The pool.map chunk-size heuristic (satellite fix).

    Small batches used to degenerate to chunksize 1 -- one pickled message
    per call, re-shipping each chunk's shared content call by call.  Now a
    small batch targets one chunk per worker and a large batch four.
    """

    def test_small_batch_floors_at_one_chunk_per_worker(self):
        # 8 calls on 4 workers: previously chunksize 1 (8 chunks); now 2.
        assert _call_chunksize(8, 4) == 2
        # 20 calls on 8 workers: ceiling the size would give 3 (7 chunks,
        # one worker stranded idle); flooring gives 2 (10 chunks).
        assert _call_chunksize(20, 8) == 2

    def test_large_batch_targets_four_chunks_per_worker(self):
        assert _call_chunksize(1000, 4) == 63  # ceil(1000 / 16)
        assert _call_chunksize(65, 4) == 5  # just past the boundary

    def test_boundary_batch_does_not_degenerate(self):
        # Exactly workers * 4 calls must take the small-batch floor, not
        # fall through to chunksize 1.
        assert _call_chunksize(32, 8) == 4
        assert _call_chunksize(16, 4) == 4

    def test_degenerate_sizes(self):
        assert _call_chunksize(0, 4) == 1
        assert _call_chunksize(1, 4) == 1
        assert _call_chunksize(3, 8) == 1  # fewer calls than workers

    def test_never_exceeds_batch(self):
        for n_calls in range(1, 70):
            for workers in (1, 2, 4, 8):
                size = _call_chunksize(n_calls, workers)
                assert 1 <= size <= n_calls

    def test_no_worker_stranded_before_another_queues_two(self):
        """Satellite fix: chunk count >= min(n_calls, workers) on the grid.

        Fewer chunks than workers means some worker never receives a chunk
        while another queues two -- the stranding bug.  The property must
        hold across the whole (n_calls, workers) grid, large batches
        included.
        """
        for n_calls in range(0, 130):
            for workers in (1, 2, 3, 4, 5, 7, 8, 12, 16):
                size = _call_chunksize(n_calls, workers)
                assert size >= 1
                if n_calls == 0:
                    continue
                n_chunks = -(-n_calls // size)
                assert n_chunks >= min(n_calls, workers), (
                    f"n_calls={n_calls} workers={workers} chunksize={size} "
                    f"-> only {n_chunks} chunk(s)"
                )


class TestGetExecutor:
    def test_names(self):
        from repro.runtime import DistributedExecutor

        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)
        distributed = get_executor("distributed:2")
        assert isinstance(distributed, DistributedExecutor)
        assert distributed.workers == 2
        distributed.close()  # never started; must be a no-op

    def test_worker_suffix(self):
        executor = get_executor("thread:3")
        assert executor.workers == 3

    def test_explicit_workers_win_over_suffix(self):
        executor = get_executor("process:3", workers=5)
        assert executor.workers == 5

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_executor("quantum")
