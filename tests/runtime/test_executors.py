"""Tests for the serial / thread-pool / process-pool executors."""

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)


@pytest.fixture(scope="module")
def sort_setup():
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(6, variant.variant, seed=0)
    configs = [program.default_configuration()]
    import random

    configs.append(program.config_space.sample(random.Random(7)))
    tasks = [(config, program_input) for config in configs for program_input in inputs]
    return program, tasks


def reference_results(program, tasks):
    return SerialExecutor().run_batch(program, tasks)


class TestSerialExecutor:
    def test_matches_direct_runs(self, sort_setup):
        program, tasks = sort_setup
        results = SerialExecutor().run_batch(program, tasks)
        for (config, program_input), result in zip(tasks, results):
            direct = program.run(config, program_input)
            assert result.time == direct.time
            assert result.accuracy == direct.accuracy

    def test_empty_batch(self, sort_setup):
        program, _ = sort_setup
        assert SerialExecutor().run_batch(program, []) == []


class TestThreadExecutor:
    def test_matches_serial(self, sort_setup):
        program, tasks = sort_setup
        expected = reference_results(program, tasks)
        with ThreadExecutor(workers=4) as executor:
            results = executor.run_batch(program, tasks)
        assert [r.time for r in results] == [r.time for r in expected]
        assert [r.accuracy for r in results] == [r.accuracy for r in expected]

    def test_cost_accounting_isolated_per_run(self, sort_setup):
        """Concurrent runs must not leak charges into each other's counters."""
        space = ConfigurationSpace([IntegerParameter("units", 1, 1000)])

        def run(config, _input):
            charge(float(config["units"]))
            return config["units"]

        program = PetaBricksProgram("charger", space, run)
        tasks = [
            (program.default_configuration().with_updates(units=units), None)
            for units in range(1, 201)
        ]
        with ThreadExecutor(workers=8) as executor:
            results = executor.run_batch(program, tasks)
        assert [r.time for r in results] == [float(u) for u in range(1, 201)]

    def test_single_task_runs_inline(self, sort_setup):
        program, tasks = sort_setup
        executor = ThreadExecutor(workers=2)
        results = executor.run_batch(program, tasks[:1])
        assert len(results) == 1
        assert executor._pool is None  # no pool spun up for one task
        executor.close()


class TestProcessExecutor:
    def test_matches_serial(self, sort_setup):
        program, tasks = sort_setup
        expected = reference_results(program, tasks)
        with ProcessExecutor(workers=2) as executor:
            results = executor.run_batch(program, tasks)
            assert executor.fallback_reason is None
        assert [r.time for r in results] == [r.time for r in expected]
        assert [r.accuracy for r in results] == [r.accuracy for r in expected]

    def test_falls_back_to_serial_on_unpicklable_program(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])
        # A lambda run function cannot be pickled into worker processes.
        program = PetaBricksProgram(
            "local", space, lambda config, _input: charge(float(config["x"]))
        )
        tasks = [(program.default_configuration(), None)] * 3
        with ProcessExecutor(workers=2) as executor:
            results = executor.run_batch(program, tasks)
            assert executor.fallback_reason is not None
            assert "not picklable" in executor.fallback_reason
        assert [r.time for r in results] == [3.0, 3.0, 3.0]

    def test_pool_reused_across_batches(self, sort_setup):
        program, tasks = sort_setup
        with ProcessExecutor(workers=2) as executor:
            executor.run_batch(program, tasks[:3])
            pool = executor._pool
            executor.run_batch(program, tasks[3:6])
            assert executor._pool is pool


class TestGetExecutor:
    def test_names(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_worker_suffix(self):
        executor = get_executor("thread:3")
        assert executor.workers == 3

    def test_explicit_workers_win_over_suffix(self):
        executor = get_executor("process:3", workers=5)
        assert executor.workers == 5

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_executor("quantum")
