"""Tests for the Runtime facade (cache-aware batching) and run keys."""

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.runtime import (
    RunCache,
    Runtime,
    SerialExecutor,
    config_key,
    input_key,
    program_fingerprint,
    run_key,
)


def counting_program(name="counted"):
    """A tiny program that records how many times it really executed."""
    calls = []

    def run(config, program_input):
        calls.append((config["x"], program_input))
        charge(float(config["x"]) * (1.0 + (program_input or 0)))
        return config["x"]

    space = ConfigurationSpace([IntegerParameter("x", 1, 10)])
    return PetaBricksProgram(name, space, run), calls


class TestRuntimeRun:
    def test_cache_hit_returns_identical_result(self):
        program, calls = counting_program()
        runtime = Runtime(cache=RunCache())
        config = program.default_configuration()
        first = runtime.run(program, config, 3)
        second = runtime.run(program, config, 3)
        assert second is first
        assert len(calls) == 1
        assert runtime.telemetry.cache_hits == 1
        assert runtime.telemetry.runs_executed == 1

    def test_no_cache_always_executes(self):
        program, calls = counting_program()
        runtime = Runtime(cache=None)
        config = program.default_configuration()
        runtime.run(program, config, 3)
        runtime.run(program, config, 3)
        assert len(calls) == 2
        assert runtime.telemetry.runs_executed == 2

    def test_need_output_reexecutes_stripped_entry(self):
        program, calls = counting_program()
        runtime = Runtime(cache=RunCache())
        config = program.default_configuration()
        measured = runtime.run(program, config, 3)
        assert measured.output is None  # measurement runs don't keep outputs
        full = runtime.run(program, config, 3, need_output=True)
        assert full.output == config["x"]
        assert len(calls) == 2
        # The refreshed entry now serves both kinds of request.
        assert runtime.run(program, config, 3, need_output=True) is full
        assert len(calls) == 2


class TestRunInfo:
    def test_reports_cache_provenance(self):
        program, calls = counting_program()
        runtime = Runtime(cache=RunCache())
        config = program.default_configuration()
        first, first_hit = runtime.run_info(program, config, 3)
        second, second_hit = runtime.run_info(program, config, 3)
        assert (first_hit, second_hit) == (False, True)
        assert second is first
        assert len(calls) == 1

    def test_cacheless_never_reports_hits(self):
        program, _calls = counting_program()
        runtime = Runtime(cache=None)
        config = program.default_configuration()
        _result, hit = runtime.run_info(program, config, 3)
        _result, hit_again = runtime.run_info(program, config, 3)
        assert hit is False and hit_again is False

    def test_need_output_miss_then_hit(self):
        program, _calls = counting_program()
        runtime = Runtime(cache=RunCache())
        config = program.default_configuration()
        _result, hit = runtime.run_info(program, config, 3, need_output=True)
        result, hit_again = runtime.run_info(program, config, 3, need_output=True)
        assert (hit, hit_again) == (False, True)
        assert result.output == config["x"]


class TestRunPairs:
    def test_duplicates_execute_once_under_cache(self):
        program, calls = counting_program()
        runtime = Runtime(cache=RunCache())
        config = program.default_configuration()
        results = runtime.run_pairs(program, [(config, 1)] * 5)
        assert len(results) == 5
        assert len({id(r) for r in results}) == 1
        assert len(calls) == 1
        assert runtime.telemetry.runs_requested == 5
        assert runtime.telemetry.cache_hits == 4

    def test_duplicates_all_execute_without_cache(self):
        program, calls = counting_program()
        runtime = Runtime(cache=None)
        config = program.default_configuration()
        runtime.run_pairs(program, [(config, 1)] * 5)
        assert len(calls) == 5

    def test_order_preserved(self):
        program, _ = counting_program()
        configs = [
            program.default_configuration().with_updates(x=x) for x in (2, 7, 4)
        ]
        runtime = Runtime(cache=RunCache())
        results = runtime.run_pairs(program, [(c, 0) for c in configs])
        assert [r.time for r in results] == [2.0, 7.0, 4.0]


class TestMeasure:
    def test_matrix_matches_direct_loops(self):
        variant = get_benchmark("sort2")
        program = variant.benchmark.program
        inputs = variant.benchmark.generate_inputs(5, variant.variant, seed=1)
        configs = [program.default_configuration()]
        runtime = Runtime(cache=RunCache())
        measured = runtime.measure(program, configs, inputs)
        assert measured["times"].shape == (5, 1)
        for i, program_input in enumerate(inputs):
            direct = program.run(configs[0], program_input)
            assert measured["times"][i, 0] == direct.time
            assert measured["accuracies"][i, 0] == direct.accuracy

    def test_warm_cache_executes_nothing(self):
        program, calls = counting_program()
        configs = [program.default_configuration().with_updates(x=x) for x in (1, 2)]
        runtime = Runtime(cache=RunCache())
        first = runtime.measure(program, configs, [0, 1, 2])
        executed = len(calls)
        second = runtime.measure(program, configs, [0, 1, 2])
        assert len(calls) == executed
        assert np.array_equal(first["times"], second["times"])
        assert runtime.stats()["telemetry"]["hit_rate"] == pytest.approx(0.5)


class TestPersistedRuntime:
    def test_create_loads_and_saves_cache(self, tmp_path):
        path = str(tmp_path / "runs.json")
        program, calls = counting_program()
        config = program.default_configuration()

        runtime = Runtime.create(cache_path=path)
        runtime.run(program, config, 1)
        assert runtime.save_cache() == 1

        program2, calls2 = counting_program()
        warm = Runtime.create(cache_path=path)
        result = warm.run(program2, config, 1)
        assert calls2 == []  # served from disk, no execution
        assert result.time == program.run(config, 1).time

    def test_save_cache_without_cache_is_noop(self):
        assert Runtime(cache=None).save_cache() == 0

    def test_use_cache_false_wins_over_cache_path(self, tmp_path):
        """--no-cache must disable even a persisted cache file."""
        path = str(tmp_path / "runs.json")
        program, _ = counting_program()
        config = program.default_configuration()
        seeded = Runtime.create(cache_path=path)
        seeded.run(program, config, 1)
        seeded.save_cache()

        uncached = Runtime.create(use_cache=False, cache_path=path)
        assert uncached.cache is None
        _, calls = counting_program()  # fresh call log, same behaviour
        uncached.run(program, config, 1)
        assert uncached.telemetry.runs_executed == 1
        assert uncached.telemetry.cache_hits == 0


class TestKeys:
    def test_same_content_same_key(self):
        variant = get_benchmark("sort2")
        program = variant.benchmark.program
        config = program.default_configuration()
        a = np.array([3.0, 1.0, 2.0])
        b = np.array([3.0, 1.0, 2.0])
        assert run_key(program, config, a) == run_key(program, config, b)

    def test_different_input_different_key(self):
        assert input_key(np.array([1.0, 2.0])) != input_key(np.array([2.0, 1.0]))
        assert input_key(None) != input_key(0)

    def test_different_config_different_key(self):
        program, _ = counting_program()
        base = program.default_configuration()
        assert config_key(base) != config_key(base.with_updates(x=base["x"] + 1))

    def test_same_name_different_behaviour_distinct_fingerprint(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])

        def run_a(config, _input):
            charge(1.0)

        def run_b(config, _input):
            charge(2.0)

        a = PetaBricksProgram("twin", space, run_a)
        b = PetaBricksProgram("twin", space, run_b)
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_different_accuracy_metric_distinct_fingerprint(self):
        from repro.lang.accuracy import AccuracyMetric

        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])

        def run(config, _input):
            charge(1.0)

        def strict(_program_input, _output):
            return 0.5

        a = PetaBricksProgram("metric-twin", space, run)
        b = PetaBricksProgram(
            "metric-twin", space, run, accuracy_metric=AccuracyMetric("strict", strict)
        )
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_shared_program_shared_fingerprint(self):
        sort1 = get_benchmark("sort1").benchmark.program
        sort2 = get_benchmark("sort2").benchmark.program
        assert program_fingerprint(sort1) == program_fingerprint(sort2)
