"""Cross-executor determinism of the full experiment pipeline.

The acceptance bar for the measurement runtime: ``run_experiment`` must
produce *identical* per-input times and speedups whichever executor carries
the program runs.  This holds because (a) every run is a pure function of
(program, configuration, input) -- deterministic cost model, per-run seeded
RNGs -- and (b) everything stochastic in the pipeline itself (clustering,
autotuning, splits) draws from explicitly seeded RNGs on the coordinating
thread, never from worker threads/processes (the seeded-RNG threading
audit).
"""

import random

import numpy as np
import pytest

from repro.core.baselines import DynamicOracle, OneLevelLearning
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.runtime import RunCache, Runtime

#: Small but complete: full two-level training plus all four methods.
METHODS = ("static_oracle", "dynamic_oracle", "two_level", "one_level")


def tiny_config(executor: str, **overrides) -> ExperimentConfig:
    settings = dict(
        n_inputs=24,
        n_clusters=3,
        tuner_generations=2,
        tuner_population=5,
        tuning_neighbors=2,
        max_subsets=12,
        seed=0,
        executor=executor,
        workers=2,
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


@pytest.fixture(scope="module")
def serial_result():
    return run_experiment("sort1", tiny_config("serial"))


class TestCrossExecutorDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_identical_times_and_speedups(self, serial_result, executor):
        result = run_experiment("sort1", tiny_config(executor))
        assert result.runtime_stats["executor"] == executor
        # A silent fallback would make the process case vacuous.
        assert "executor_fallback" not in result.runtime_stats
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, serial_result.methods[method].times
            )
            np.testing.assert_array_equal(
                result.speedups_over_static(method),
                serial_result.speedups_over_static(method),
            )
            assert result.satisfaction(method) == serial_result.satisfaction(method)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_identical_landmarks_and_dataset(self, serial_result, executor):
        result = run_experiment("sort1", tiny_config(executor))
        assert result.training.landmarks == serial_result.training.landmarks
        np.testing.assert_array_equal(
            result.training.dataset.times, serial_result.training.dataset.times
        )
        np.testing.assert_array_equal(
            result.training.level1.cluster_labels,
            serial_result.training.level1.cluster_labels,
        )

    def test_serial_rerun_is_bit_identical(self, serial_result):
        """Seeded-RNG audit: nothing in the pipeline draws unseeded entropy."""
        result = run_experiment("sort1", tiny_config("serial"))
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, serial_result.methods[method].times
            )

    def test_cache_does_not_change_results(self, serial_result):
        result = run_experiment("sort1", tiny_config("serial", use_cache=False))
        for method in METHODS:
            np.testing.assert_array_equal(
                result.methods[method].times, serial_result.methods[method].times
            )


class TestSharedRuntime:
    def test_second_experiment_reuses_measurements(self):
        runtime = Runtime(cache=RunCache())
        config = tiny_config("serial")
        run_experiment("sort1", config, runtime=runtime)
        executed_before = runtime.telemetry.runs_executed
        run_experiment("sort1", config, runtime=runtime)
        # The repeat run is answered entirely from the shared cache.
        assert runtime.telemetry.runs_executed == executed_before
        runtime.close()


class TestLiveOraclesAgreeWithMatrix:
    def test_dynamic_oracle_live_equals_matrix(self, serial_result):
        training = serial_result.training
        dataset = training.dataset
        rows = training.level2.test_rows
        runtime = Runtime(cache=RunCache())
        oracle = DynamicOracle()
        live = oracle.evaluate_live(
            training.deployed.program, dataset, rows, runtime=runtime
        )
        matrix = oracle.evaluate(dataset, rows)
        np.testing.assert_array_equal(live.times, matrix.times)
        np.testing.assert_array_equal(live.labels, matrix.labels)
        assert runtime.telemetry.runs_executed > 0

    def test_one_level_live_equals_matrix(self, serial_result):
        training = serial_result.training
        dataset = training.dataset
        rows = training.level2.test_rows
        baseline = OneLevelLearning(training.level1)
        live = baseline.evaluate_live(
            training.deployed.program, dataset, rows, runtime=Runtime(cache=RunCache())
        )
        matrix = baseline.evaluate(dataset, rows)
        np.testing.assert_array_equal(live.times, matrix.times)
        np.testing.assert_array_equal(live.accuracies, matrix.accuracies)

    def test_live_evaluation_requires_inputs(self, serial_result):
        dataset = serial_result.training.dataset
        stripped = dataset.restrict_landmarks(list(range(dataset.n_landmarks)))
        stripped.inputs = None
        with pytest.raises(ValueError):
            DynamicOracle().evaluate_live(
                serial_result.training.deployed.program, stripped, [0]
            )


class TestDeploymentDeterminism:
    def test_deployed_run_identical_across_executors(self, serial_result):
        deployed = serial_result.training.deployed
        rng = random.Random(5)
        probe = [float(rng.randint(0, 100)) for _ in range(40)]
        probe_input = np.array(probe)
        baseline = deployed.run(probe_input)
        for executor in ("thread", "process"):
            runtime = Runtime.create(executor=executor, workers=2)
            deployed.runtime = runtime
            try:
                outcome = deployed.run(probe_input)
                assert outcome.result.time == baseline.result.time
                assert outcome.total_time == baseline.total_time
                np.testing.assert_array_equal(
                    outcome.result.output, baseline.result.output
                )
            finally:
                deployed.runtime = None
                runtime.close()
