"""Cross-executor determinism of the parallel Level-2 candidate search.

The acceptance bar for the generalized task runtime: ``run_level2`` must
select the *identical* production classifier with *identical* scores
whichever executor carries the fit-and-score tasks.  This holds because
candidates are enumerated, reassembled, and compared in enumeration order
-- a deterministic key independent of completion order -- and every task is
a pure function of its arguments.
"""

import numpy as np
import pytest

from repro.autotuner.evolution import EvolutionaryAutotuner
from repro.benchmarks_suite import get_benchmark
from repro.core.level2 import Level2Config, run_level2
from repro.core.selection import cross_validate_classifier
from repro.core.synthetic import synthetic_level2_dataset
from repro.runtime import Runtime


@pytest.fixture(scope="module")
def dataset():
    return synthetic_level2_dataset(n=96, variable_accuracy=True)


@pytest.fixture(scope="module")
def serial_result(dataset):
    return run_level2(
        dataset, range(48), range(48, 96), config=Level2Config(max_subsets=12)
    )


class TestCrossExecutorLevel2:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_identical_selection_and_scores(self, dataset, serial_result, executor):
        runtime = Runtime.create(executor=executor, workers=2)
        try:
            result = run_level2(
                dataset,
                range(48),
                range(48, 96),
                config=Level2Config(max_subsets=12),
                runtime=runtime,
            )
            assert "executor_fallback" not in runtime.stats()
        finally:
            runtime.close()
        assert (
            result.production.classifier.name
            == serial_result.production.classifier.name
        )
        assert result.production.performance_cost == serial_result.production.performance_cost
        assert [c.name for c in result.classifiers] == [
            c.name for c in serial_result.classifiers
        ]
        assert [e.performance_cost for e in result.evaluations] == [
            e.performance_cost for e in serial_result.evaluations
        ]
        assert [e.satisfaction_rate for e in result.evaluations] == [
            e.satisfaction_rate for e in serial_result.evaluations
        ]
        np.testing.assert_array_equal(result.labels, serial_result.labels)
        np.testing.assert_array_equal(result.cost_matrix, serial_result.cost_matrix)

    def test_serial_rerun_is_identical(self, dataset, serial_result):
        result = run_level2(
            dataset, range(48), range(48, 96), config=Level2Config(max_subsets=12)
        )
        assert result.production.classifier.name == serial_result.production.classifier.name
        assert [e.performance_cost for e in result.evaluations] == [
            e.performance_cost for e in serial_result.evaluations
        ]


class TestWarmRunsSkipRetraining:
    def test_second_search_is_all_task_cache_hits(self, dataset):
        runtime = Runtime.create(executor="serial")
        config = Level2Config(max_subsets=12)
        first = run_level2(dataset, range(48), range(48, 96), config=config, runtime=runtime)
        executed_after_first = runtime.telemetry.tasks_executed
        assert executed_after_first == len(first.classifiers)
        second = run_level2(dataset, range(48), range(48, 96), config=config, runtime=runtime)
        assert runtime.telemetry.tasks_executed == executed_after_first
        assert runtime.telemetry.task_cache_hits >= len(second.classifiers)
        assert second.production.performance_cost == first.production.performance_cost
        runtime.close()

    def test_changed_split_retrains(self, dataset):
        runtime = Runtime.create(executor="serial")
        config = Level2Config(max_subsets=12)
        run_level2(dataset, range(48), range(48, 96), config=config, runtime=runtime)
        executed = runtime.telemetry.tasks_executed
        run_level2(dataset, range(40), range(40, 96), config=config, runtime=runtime)
        assert runtime.telemetry.tasks_executed > executed
        runtime.close()


class TestSelectionTaskLayer:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_cross_validation_deterministic_across_executors(self, dataset, executor):
        from repro.core.classifiers import MaxAprioriClassifier

        labels = dataset.labels()
        runtime = Runtime.create(executor=executor, workers=2)
        try:
            folds = cross_validate_classifier(
                MaxAprioriClassifier, dataset, labels, range(48), n_splits=4, runtime=runtime
            )
        finally:
            runtime.close()
        assert len(folds) == 4
        costs = [fold.performance_cost for fold in folds]
        serial_folds = cross_validate_classifier(
            MaxAprioriClassifier, dataset, labels, range(48), n_splits=4
        )
        assert costs == [fold.performance_cost for fold in serial_folds]

    def test_cv_folds_config_populates_result(self, dataset):
        result = run_level2(
            dataset,
            range(48),
            range(48, 96),
            config=Level2Config(max_subsets=8, cv_folds=3),
        )
        assert result.production_cv_costs is not None
        assert len(result.production_cv_costs) == 3
        assert all(np.isfinite(cost) for cost in result.production_cv_costs)

    def test_cv_folds_cached_on_warm_runtime(self, dataset):
        """Keyed fold tasks make the CV phase warm-rerun-free like the
        candidate search."""
        runtime = Runtime.create(executor="serial")
        config = Level2Config(max_subsets=8, cv_folds=3)
        first = run_level2(dataset, range(48), range(48, 96), config=config, runtime=runtime)
        executed = runtime.telemetry.tasks_executed
        second = run_level2(dataset, range(48), range(48, 96), config=config, runtime=runtime)
        assert runtime.telemetry.tasks_executed == executed
        assert second.production_cv_costs == first.production_cv_costs
        runtime.close()

    def test_cv_folds_parallelize_under_process_executor(self, dataset):
        """The production-CV factory is picklable, so cv_folds combined with
        the process executor must not trigger the serial fallback."""
        runtime = Runtime.create(executor="process", workers=2)
        try:
            result = run_level2(
                dataset,
                range(48),
                range(48, 96),
                config=Level2Config(max_subsets=8, cv_folds=2),
                runtime=runtime,
            )
            assert "executor_fallback" not in runtime.stats()
        finally:
            runtime.close()
        assert result.production_cv_costs is not None

    def test_invalid_cv_folds_rejected_before_search(self, dataset):
        runtime = Runtime.create(executor="serial")
        with pytest.raises(ValueError, match="cv_folds"):
            run_level2(
                dataset,
                range(48),
                range(48, 96),
                config=Level2Config(max_subsets=8, cv_folds=1),
                runtime=runtime,
            )
        # The rejection happened before any candidate was trained.
        assert runtime.telemetry.tasks_requested == 0
        with pytest.raises(ValueError, match="training rows"):
            run_level2(dataset, [0], range(48, 96), config=Level2Config(cv_folds=2))


class TestAutotunerBatchedObjective:
    def _tune(self, runtime):
        variant = get_benchmark("sort1")
        program = variant.benchmark.program
        inputs = variant.benchmark.generate_inputs(4, variant.variant, seed=3)
        tuner = EvolutionaryAutotuner(
            population_size=4,
            offspring_per_generation=4,
            max_generations=3,
            seed=11,
            runtime=runtime,
        )
        return tuner.tune(program, inputs[:2])

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_tuning_identical_across_executors(self, executor):
        baseline = self._tune(None)
        runtime = Runtime.create(executor=executor, workers=2)
        try:
            result = self._tune(runtime)
        finally:
            runtime.close()
        assert result.best_config == baseline.best_config
        assert result.best.mean_time == baseline.best.mean_time
        assert result.history == baseline.history
        assert result.evaluations == baseline.evaluations

    def test_warm_runtime_skips_reexecution(self):
        runtime = Runtime.create(executor="serial")
        first = self._tune(runtime)
        executed = runtime.telemetry.runs_executed
        second = self._tune(runtime)
        assert second.best_config == first.best_config
        # Same seed, same program: every (configuration, input) run recurs
        # and is answered by the content-keyed run cache.
        assert runtime.telemetry.runs_executed == executed
        runtime.close()

    def test_objective_runs_stay_in_run_cache(self):
        """Tuning measurements share the persistable run cache (not only the
        in-memory task cache), preserving warm-start across processes."""
        runtime = Runtime.create(executor="serial")
        self._tune(runtime)
        assert runtime.telemetry.runs_executed > 0
        assert runtime.stats()["cache"]["entries"] == runtime.telemetry.runs_executed
        runtime.close()
