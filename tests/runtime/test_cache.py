"""Tests for the content-keyed run cache."""

import json

import numpy as np
import pytest

from repro.lang.program import RunResult
from repro.runtime import RunCache
from repro.runtime.cache import _FORMAT_VERSION


def result(time=1.0, accuracy=1.0, output=None, extra=None):
    return RunResult(output=output, time=time, accuracy=accuracy, extra=extra or {})


class TestInMemory:
    def test_hit_returns_identical_object(self):
        cache = RunCache()
        stored = result(time=42.0, output=[1, 2, 3])
        cache.put("k", stored)
        assert cache.get("k") is stored
        assert cache.get("k") is stored  # stable across repeated hits

    def test_miss_returns_none_and_counts(self):
        cache = RunCache()
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0

    def test_need_output_treats_outputless_entry_as_miss(self):
        cache = RunCache()
        cache.put("k", result(output=None), has_output=False)
        assert cache.get("k") is not None
        assert cache.get("k", need_output=True) is None

    def test_need_output_hit_when_output_stored(self):
        cache = RunCache()
        stored = result(output="payload")
        cache.put("k", stored, has_output=True)
        assert cache.get("k", need_output=True) is stored

    def test_put_overwrites(self):
        cache = RunCache()
        cache.put("k", result(time=1.0))
        replacement = result(time=2.0)
        cache.put("k", replacement)
        assert len(cache) == 1
        assert cache.get("k") is replacement


class TestEviction:
    def test_lru_eviction_order(self):
        cache = RunCache(max_entries=2)
        cache.put("a", result(time=1.0))
        cache.put("b", result(time=2.0))
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", result(time=3.0))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_unbounded_by_default(self):
        cache = RunCache()
        for i in range(1000):
            cache.put(f"k{i}", result(time=float(i)))
        assert len(cache) == 1000
        assert cache.stats()["evictions"] == 0

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RunCache(max_entries=0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("x", result(time=3.5, accuracy=0.75, extra={"note": "hi"}))
        cache.put("y", result(time=1.25, accuracy=1.0, output=np.arange(3)))
        assert cache.save() == 2

        fresh = RunCache(persist_path=path)
        assert fresh.load() == 2
        x = fresh.get("x")
        assert x.time == 3.5
        assert x.accuracy == 0.75
        assert x.extra == {"note": "hi"}
        # Outputs are never persisted; reloaded entries are measurement-only.
        assert fresh.get("y").output is None
        assert fresh.get("y", need_output=True) is None

    def test_load_missing_file_is_empty(self, tmp_path):
        cache = RunCache(persist_path=str(tmp_path / "absent.json"))
        assert cache.load() == 0
        assert len(cache) == 0

    def test_load_tolerates_corrupt_file(self, tmp_path):
        """A bad cache file degrades to a cold start, never a crash."""
        path = tmp_path / "cache.json"
        for garbage in ("not json{{", "[1, 2, 3]", '{"version": 1, "entries": {"k": {}}}'):
            path.write_text(garbage)
            cache = RunCache(persist_path=str(path))
            assert cache.load() == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"version": %d, "entries": {"k": {"time": 1, "accuracy": 1}}}'
                        % (_FORMAT_VERSION + 1))
        cache = RunCache(persist_path=str(path))
        assert cache.load() == 0

    def test_json_unsafe_extras_dropped(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("k", result(extra={"ok": 1, "bad": np.arange(2)}))
        cache.save()
        fresh = RunCache(persist_path=path)
        fresh.load()
        assert fresh.get("k").extra == {"ok": 1}

    def test_save_without_path_rejected(self):
        with pytest.raises(ValueError):
            RunCache().save()


class TestNonUtf8Keys:
    """Persistence of keys carrying non-UTF8-safe payloads (lone surrogates).

    Program names are arbitrary strings -- an undecodable filename can smuggle
    surrogates into a run key -- and used to poison the persisted JSON for
    strict parsers.  Such keys are now escaped to ASCII on save and restored
    bit-exactly on load.
    """

    SURROGATE_KEY = "prog\udcff:abc\ud800:def"

    def test_round_trip_preserves_surrogate_key(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put(self.SURROGATE_KEY, result(time=3.0), has_output=False)
        cache.put("plain:key", result(time=4.0), has_output=False)
        assert cache.save() == 2
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 2
        assert fresh.get(self.SURROGATE_KEY).time == 3.0
        assert fresh.get("plain:key").time == 4.0

    def test_persisted_file_is_valid_utf8_json(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = RunCache(persist_path=str(path))
        cache.put(self.SURROGATE_KEY, result(), has_output=False)
        cache.save()
        raw = path.read_bytes()
        payload = json.loads(raw.decode("utf-8"))  # strict decode must succeed
        assert list(payload["entries"]) != [self.SURROGATE_KEY]

    def test_key_colliding_with_escape_prefix_round_trips(self, tmp_path):
        from repro.runtime.cache import _ESCAPED_KEY_PREFIX

        tricky = _ESCAPED_KEY_PREFIX + "impostor"
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put(tricky, result(time=5.0), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 1
        assert fresh.get(tricky).time == 5.0

    def test_non_string_key_raises_explicitly(self, tmp_path):
        cache = RunCache(persist_path=str(tmp_path / "cache.json"))
        cache.put(123, result(), has_output=False)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="keys must be strings"):
            cache.save()

    def test_surrogate_extras_dropped_not_poisonous(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("k", result(extra={"ok": 1, "bad": "x\udcff"}), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 1
        assert fresh.get("k").extra == {"ok": 1}
