"""Tests for the content-keyed run cache and its sharded on-disk store."""

import glob
import json
import os

import numpy as np
import pytest

from repro.lang.program import RunResult
from repro.resilience.faults import FaultPlan, FaultSpec, fault_scope
from repro.runtime import RunCache
from repro.runtime.cache import _FORMAT_VERSION, _META_NAME, _SHARDS_DIR, _shard_of


def result(time=1.0, accuracy=1.0, output=None, extra=None):
    return RunResult(output=output, time=time, accuracy=accuracy, extra=extra or {})


def shard_files(store):
    """All shard files of a sharded store, sorted."""
    return sorted(glob.glob(os.path.join(str(store), _SHARDS_DIR, "*.json")))


class TestInMemory:
    def test_hit_returns_identical_object(self):
        cache = RunCache()
        stored = result(time=42.0, output=[1, 2, 3])
        cache.put("k", stored)
        assert cache.get("k") is stored
        assert cache.get("k") is stored  # stable across repeated hits

    def test_miss_returns_none_and_counts(self):
        cache = RunCache()
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0

    def test_need_output_treats_outputless_entry_as_miss(self):
        cache = RunCache()
        cache.put("k", result(output=None), has_output=False)
        assert cache.get("k") is not None
        assert cache.get("k", need_output=True) is None

    def test_need_output_hit_when_output_stored(self):
        cache = RunCache()
        stored = result(output="payload")
        cache.put("k", stored, has_output=True)
        assert cache.get("k", need_output=True) is stored

    def test_put_overwrites(self):
        cache = RunCache()
        cache.put("k", result(time=1.0))
        replacement = result(time=2.0)
        cache.put("k", replacement)
        assert len(cache) == 1
        assert cache.get("k") is replacement


class TestEviction:
    def test_lru_eviction_order(self):
        cache = RunCache(max_entries=2)
        cache.put("a", result(time=1.0))
        cache.put("b", result(time=2.0))
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", result(time=3.0))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_unbounded_by_default(self):
        cache = RunCache()
        for i in range(1000):
            cache.put(f"k{i}", result(time=float(i)))
        assert len(cache) == 1000
        assert cache.stats()["evictions"] == 0

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RunCache(max_entries=0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("x", result(time=3.5, accuracy=0.75, extra={"note": "hi"}))
        cache.put("y", result(time=1.25, accuracy=1.0, output=np.arange(3)))
        assert cache.save() == 2

        fresh = RunCache(persist_path=path)
        assert fresh.load() == 2
        x = fresh.get("x")
        assert x.time == 3.5
        assert x.accuracy == 0.75
        assert x.extra == {"note": "hi"}
        # Outputs are never persisted; reloaded entries are measurement-only.
        assert fresh.get("y").output is None
        assert fresh.get("y", need_output=True) is None

    def test_load_missing_file_is_empty(self, tmp_path):
        cache = RunCache(persist_path=str(tmp_path / "absent.json"))
        assert cache.load() == 0
        assert len(cache) == 0

    def test_load_tolerates_corrupt_file(self, tmp_path):
        """A bad cache file degrades to a cold start (with a warning), never a crash."""
        path = tmp_path / "cache.json"
        for garbage in ("not json{{", "[1, 2, 3]", '{"version": 1, "entries": {"k": {}}}'):
            path.write_text(garbage)
            cache = RunCache(persist_path=str(path))
            with pytest.warns(UserWarning, match="corrupt or incompatible"):
                assert cache.load() == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"version": %d, "entries": {"k": {"time": 1, "accuracy": 1}}}'
                        % (_FORMAT_VERSION + 1))
        cache = RunCache(persist_path=str(path))
        with pytest.warns(UserWarning, match="corrupt or incompatible"):
            assert cache.load() == 0

    def test_json_unsafe_extras_dropped(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("k", result(extra={"ok": 1, "bad": np.arange(2)}))
        cache.save()
        fresh = RunCache(persist_path=path)
        fresh.load()
        assert fresh.get("k").extra == {"ok": 1}

    def test_save_without_path_rejected(self):
        with pytest.raises(ValueError):
            RunCache().save()


class TestNonUtf8Keys:
    """Persistence of keys carrying non-UTF8-safe payloads (lone surrogates).

    Program names are arbitrary strings -- an undecodable filename can smuggle
    surrogates into a run key -- and used to poison the persisted JSON for
    strict parsers.  Such keys are now escaped to ASCII on save and restored
    bit-exactly on load.
    """

    SURROGATE_KEY = "prog\udcff:abc\ud800:def"

    def test_round_trip_preserves_surrogate_key(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put(self.SURROGATE_KEY, result(time=3.0), has_output=False)
        cache.put("plain:key", result(time=4.0), has_output=False)
        assert cache.save() == 2
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 2
        assert fresh.get(self.SURROGATE_KEY).time == 3.0
        assert fresh.get("plain:key").time == 4.0

    def test_persisted_shards_are_valid_utf8_json(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = RunCache(persist_path=str(path))
        cache.put(self.SURROGATE_KEY, result(), has_output=False)
        cache.save()
        shards = shard_files(path)
        assert shards
        for shard in shards:
            with open(shard, "rb") as handle:
                raw = handle.read()
            payload = json.loads(raw.decode("utf-8"))  # strict decode must succeed
            assert self.SURROGATE_KEY not in payload["entries"]

    def test_key_colliding_with_escape_prefix_round_trips(self, tmp_path):
        from repro.runtime.cache import _ESCAPED_KEY_PREFIX

        tricky = _ESCAPED_KEY_PREFIX + "impostor"
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put(tricky, result(time=5.0), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 1
        assert fresh.get(tricky).time == 5.0

    def test_non_string_key_raises_explicitly(self, tmp_path):
        cache = RunCache(persist_path=str(tmp_path / "cache.json"))
        cache.put(123, result(), has_output=False)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="keys must be strings"):
            cache.save()

    def test_surrogate_extras_dropped_not_poisonous(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(persist_path=path)
        cache.put("k", result(extra={"ok": 1, "bad": "x\udcff"}), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=path)
        assert fresh.load() == 1
        assert fresh.get("k").extra == {"ok": 1}


def populated_store(path, n=64):
    """Save ``n`` entries spread over many shards; returns their keys."""
    cache = RunCache(persist_path=str(path))
    keys = [f"prog:{i:04d}" for i in range(n)]
    for i, key in enumerate(keys):
        cache.put(key, result(time=float(i)), has_output=False)
    cache.save()
    return keys


class TestShardedStore:
    """The sharded persistence backend (layout, laziness, incremental saves)."""

    def test_store_layout(self, tmp_path):
        store = tmp_path / "cache"
        populated_store(store)
        assert os.path.isdir(store)
        assert os.path.isfile(store / _META_NAME)
        shards = shard_files(store)
        assert len(shards) > 1  # 64 keys spread over >1 hash prefix
        meta = json.loads((store / _META_NAME).read_text())
        assert sum(meta["shards"].values()) == 64

    def test_keys_land_in_their_hashed_shard(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store, n=8)
        for key in keys:
            shard = store / _SHARDS_DIR / f"{_shard_of(key)}.json"
            payload = json.loads(shard.read_text())
            assert key in payload["entries"]

    def test_load_is_lazy_per_shard(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store)
        fresh = RunCache(persist_path=str(store))
        assert fresh.load() == 64  # manifest count, no shard reads yet
        assert len(fresh) == 0
        hit = fresh.get(keys[0])
        assert hit is not None and hit.time == 0.0
        # Only the one faulted shard is resident, not the whole store.
        assert 0 < len(fresh) < 64
        assert fresh.stats()["shards_loaded"] == 1
        for key in keys:
            assert fresh.get(key) is not None
        assert len(fresh) == 64

    def test_incremental_save_touches_only_dirty_shards(self, tmp_path):
        store = tmp_path / "cache"
        populated_store(store)
        mtimes = {p: os.stat(p).st_mtime_ns for p in shard_files(store)}

        cache = RunCache(persist_path=str(store))
        cache.load()
        cache.put("new:key", result(time=99.0), has_output=False)
        cache.save()

        expected_dirty = os.path.join(
            str(store), _SHARDS_DIR, f"{_shard_of('new:key')}.json"
        )
        for path in shard_files(store):
            if path == expected_dirty:
                assert os.stat(path).st_mtime_ns != mtimes.get(path)
            else:
                assert os.stat(path).st_mtime_ns == mtimes[path]

    def test_save_merges_with_entries_evicted_from_memory(self, tmp_path):
        store = tmp_path / "cache"
        cache = RunCache(max_entries=2, persist_path=str(store))
        cache.put("a", result(time=1.0), has_output=False)
        cache.put("b", result(time=2.0), has_output=False)
        cache.save()
        # Overflow the LRU so "a"/"b" may be evicted, then save again: the
        # disk copies must survive the rewrite of their (dirty) shards.
        cache.put("c", result(time=3.0), has_output=False)
        cache.put("d", result(time=4.0), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=str(store))
        fresh.load()
        for key, value in (("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)):
            assert fresh.get(key).time == value

    def test_concurrent_saves_to_same_store_union(self, tmp_path):
        """Two caches persisting to one store must not clobber each other."""
        store = tmp_path / "cache"
        first = RunCache(persist_path=str(store))
        second = RunCache(persist_path=str(store))
        for i in range(16):
            first.put(f"first:{i}", result(time=float(i)), has_output=False)
            second.put(f"second:{i}", result(time=float(100 + i)), has_output=False)
        first.save()
        second.save()  # merges with first's shards instead of replacing them
        fresh = RunCache(persist_path=str(store))
        fresh.load()
        for i in range(16):
            assert fresh.get(f"first:{i}").time == float(i)
            assert fresh.get(f"second:{i}").time == float(100 + i)

    def test_torn_shard_write_cold_starts_that_shard(self, tmp_path):
        """An injected torn write degrades that shard to a cold start.

        The corruption comes from the production writer itself running
        under a ``cache.shard_write`` truncate fault (the torn write the
        fsync discipline exists to prevent), not from hand-crafted bytes
        -- so the bytes readers must tolerate are exactly the bytes a
        real mid-write kill would leave.
        """
        store = tmp_path / "cache"
        cache = RunCache(persist_path=str(store))
        keys = [f"prog:{i:04d}" for i in range(64)]
        for i, key in enumerate(keys):
            cache.put(key, result(time=float(i)), has_output=False)
        victim_key = keys[0]
        victim_shard = _shard_of(victim_key)
        plan = FaultPlan(
            faults=[
                FaultSpec(
                    site="cache.shard_write",
                    action="truncate",
                    nth=1,
                    match=os.path.join(_SHARDS_DIR, f"{victim_shard}.json"),
                )
            ]
        )
        with fault_scope(plan, env=False):
            cache.save()
        fresh = RunCache(persist_path=str(store))
        fresh.load()
        with pytest.warns(UserWarning, match="corrupt"):
            assert fresh.get(victim_key) is None  # that shard is a cold start
        # Other shards are unaffected.
        survivor = next(k for k in keys if _shard_of(k) != victim_shard)
        assert fresh.get(survivor) is not None

    def test_concurrent_saves_union_survives_torn_write(self, tmp_path):
        """A torn write in one saver never silently corrupts the union.

        Two caches save to one store; the second save's first shard write
        is torn (injected truncation).  Entries in untouched shards must
        read back intact, torn-shard entries must degrade to misses (a
        miss only costs re-execution), and re-saving the missing entries
        must repair the store to the full union.
        """
        import warnings

        store = tmp_path / "cache"
        first = RunCache(persist_path=str(store))
        second = RunCache(persist_path=str(store))
        expected = {}
        for i in range(16):
            expected[f"first:{i}"] = float(i)
            expected[f"second:{i}"] = float(100 + i)
            first.put(f"first:{i}", result(time=float(i)), has_output=False)
            second.put(f"second:{i}", result(time=float(100 + i)), has_output=False)
        first.save()
        plan = FaultPlan(
            faults=[
                FaultSpec(
                    site="cache.shard_write",
                    action="truncate",
                    nth=1,
                    count=1,
                    match=_SHARDS_DIR,
                )
            ]
        )
        with fault_scope(plan, env=False):
            second.save()

        fresh = RunCache(persist_path=str(store))
        fresh.load()
        missing = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # the torn shard warns once
            for key, value in expected.items():
                entry = fresh.get(key)
                if entry is None:
                    missing.append(key)
                else:
                    assert entry.time == value  # survivors are bit-intact
        # Exactly one shard was torn: something is missing, and everything
        # missing hashes to that one shard.
        assert missing
        assert len({_shard_of(key) for key in missing}) == 1

        repair = RunCache(persist_path=str(store))
        repair.load()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for key in missing:  # "re-execute" and re-save the lost runs
                assert repair.get(key) is None
                repair.put(key, result(time=expected[key]), has_output=False)
            repair.save()
        final = RunCache(persist_path=str(store))
        final.load()
        for key, value in expected.items():
            assert final.get(key).time == value

    def test_fault_in_survives_tight_lru_cap(self, tmp_path):
        """The looked-up key must win the LRU race against its own shard.

        The lookup that faults a shard in must succeed even when the shard
        holds more entries than the whole cache may retain -- the requested
        key is inserted last, so the rest of the shard cannot evict it
        mid-load.  (Later lookups into an already-seen shard may honestly
        miss under such a tiny cap; a miss only costs re-execution.)
        """
        store = tmp_path / "cache"
        keys = populated_store(store, n=16)
        for i, key in enumerate(keys):
            fresh = RunCache(max_entries=2, persist_path=str(store))
            fresh.load()
            hit = fresh.get(key)  # first lookup, whatever the shard position
            assert hit is not None and hit.time == float(i)

    def test_save_elsewhere_includes_faulted_in_entries(self, tmp_path):
        """Saving to a different store must copy lazily loaded entries too."""
        origin = tmp_path / "origin"
        keys = populated_store(origin, n=16)
        cache = RunCache(persist_path=str(origin))
        cache.load()
        for key in keys:  # fault everything in (not dirty: already on disk)
            cache.get(key)
        other = tmp_path / "copy"
        assert cache.save(str(other)) == 16
        fresh = RunCache(persist_path=str(other))
        assert fresh.load() == 16
        assert fresh.get(keys[0]) is not None

    def test_missing_manifest_rescans_shards(self, tmp_path):
        store = tmp_path / "cache"
        populated_store(store)
        os.unlink(store / _META_NAME)
        fresh = RunCache(persist_path=str(store))
        with pytest.warns(UserWarning, match="manifest"):
            assert fresh.load() == 64
        assert fresh.get("prog:0000").time == 0.0
        # The rescan rebuilt the manifest for the next (lazy) load.
        lazy = RunCache(persist_path=str(store))
        assert lazy.load() == 64
        assert len(lazy) == 0


class TestLegacyMigration:
    """One-shot migration of the single-file JSON cache to the sharded store."""

    def legacy_file(self, path, entries):
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {
                key: {"time": time, "accuracy": 1.0} for key, time in entries.items()
            },
        }
        path.write_text(json.dumps(payload))

    def test_legacy_file_loads_and_migrates_in_place(self, tmp_path):
        path = tmp_path / "cache.json"
        self.legacy_file(path, {"a": 1.0, "b": 2.0, "c": 3.0})
        cache = RunCache(persist_path=str(path))
        assert cache.load() == 3
        assert cache.get("a").time == 1.0
        # The file has become a sharded store directory at the same path.
        assert os.path.isdir(path)
        assert os.path.isfile(path / _META_NAME)
        fresh = RunCache(persist_path=str(path))
        assert fresh.load() == 3
        assert fresh.get("b").time == 2.0

    def test_migrated_store_keeps_accepting_saves(self, tmp_path):
        path = tmp_path / "cache.json"
        self.legacy_file(path, {"a": 1.0})
        cache = RunCache(persist_path=str(path))
        cache.load()
        cache.put("new", result(time=9.0), has_output=False)
        cache.save()
        fresh = RunCache(persist_path=str(path))
        assert fresh.load() == 2
        assert fresh.get("a").time == 1.0
        assert fresh.get("new").time == 9.0

    def test_migration_failure_still_loads_entries(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        self.legacy_file(path, {"a": 1.0, "b": 2.0})

        def broken_rename(*_args, **_kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "rename", broken_rename)
        cache = RunCache(persist_path=str(path))
        with pytest.warns(UserWarning, match="could not migrate"):
            assert cache.load() == 2
        assert cache.get("a").time == 1.0  # entries usable despite migration failing
        assert os.path.isfile(path)  # legacy file left untouched
        # A later save() must degrade gracefully too -- the store path is
        # still occupied by the legacy file -- not crash the run or clobber
        # the file with a directory.
        cache.put("fresh", result(time=5.0), has_output=False)
        with pytest.warns(UserWarning, match="is a file"):
            assert cache.save() == 0
        assert os.path.isfile(path)


class TestCappedCacheWithStore:
    """Eviction-vs-persistence semantics: a capped cache backed by a sharded
    store stays complete -- entries evicted from memory are re-read from
    their shard on the next lookup instead of becoming permanent misses."""

    def test_every_persisted_entry_reachable_despite_tiny_cap(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store, n=64)
        capped = RunCache(max_entries=4, persist_path=str(store))
        capped.load()
        # Two full passes: the first faults shards in and evicts most of
        # them again; the second can only succeed via shard re-reads.
        for _ in range(2):
            for i, key in enumerate(keys):
                found = capped.get(key)
                assert found is not None and found.time == float(i)
                assert len(capped) <= 4  # the cap holds throughout
        assert capped.stats()["evictions"] > 0
        assert capped.stats()["shard_rereads"] > 0

    def test_reread_inserts_only_the_requested_key(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store, n=64)
        capped = RunCache(max_entries=4, persist_path=str(store))
        capped.load()
        for key in keys:
            capped.get(key)
        rereads_before = capped.shard_rereads
        survivors = [key for key in keys if key in capped]
        evicted = next(key for key in keys if key not in capped)
        assert capped.get(evicted) is not None  # recovered from its shard
        assert capped.shard_rereads == rereads_before + 1
        # At most one pre-existing entry was displaced by the recovery.
        assert sum(1 for key in survivors if key in capped) >= len(survivors) - 1

    def test_uncapped_cache_never_rereads(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store, n=64)
        cache = RunCache(persist_path=str(store))
        cache.load()
        for key in keys:
            assert cache.get(key) is not None
        for key in keys:
            assert cache.get(key) is not None
        assert cache.stats().get("shard_rereads") is None
        assert cache.shard_rereads == 0

    def test_truly_absent_key_stays_a_miss(self, tmp_path):
        store = tmp_path / "cache"
        keys = populated_store(store, n=8)
        capped = RunCache(max_entries=2, persist_path=str(store))
        capped.load()
        for key in keys:
            capped.get(key)
        assert capped.get("prog:nowhere") is None

    def test_saved_then_evicted_entries_survive_on_disk(self, tmp_path):
        """save() merges with the shard on disk, so entries that were saved
        and later LRU-evicted are never dropped by a subsequent save."""
        store = tmp_path / "cache"
        cache = RunCache(max_entries=4, persist_path=str(store))
        early = [f"early:{i}" for i in range(4)]
        late = [f"late:{i}" for i in range(4)]
        for i, key in enumerate(early):
            cache.put(key, result(time=float(i)), has_output=False)
        cache.save()
        for i, key in enumerate(late):  # evicts every early entry
            cache.put(key, result(time=100.0 + i), has_output=False)
        assert all(key not in cache for key in early)
        cache.save()
        fresh = RunCache(persist_path=str(store))
        assert fresh.load() == 8
        for i, key in enumerate(early):
            assert fresh.get(key).time == float(i)
        for i, key in enumerate(late):
            assert fresh.get(key).time == 100.0 + i

    def test_evicted_before_any_save_is_lost_without_error(self, tmp_path):
        """An entry evicted before its first save never reached disk; the
        cache simply misses (the caller re-executes), it does not crash."""
        store = tmp_path / "cache"
        cache = RunCache(max_entries=2, persist_path=str(store))
        for i in range(5):
            cache.put(f"k{i}", result(time=float(i)), has_output=False)
        cache.save()
        fresh = RunCache(max_entries=2, persist_path=str(store))
        fresh.load()
        assert fresh.get("k4") is not None
        assert fresh.get("k0") is None


class TestAtomicWriteCleanup:
    """Satellite fix: a failing save must not litter temp files or mask errors."""

    def _tmp_files(self, directory):
        return glob.glob(os.path.join(str(directory), "**", "*.tmp"), recursive=True)

    def test_failing_serialize_leaves_no_temp_files(self, tmp_path):
        from repro.runtime.cache import _atomic_write_json

        target = tmp_path / "store" / "shard.json"
        with pytest.raises(TypeError):
            _atomic_write_json(str(target), {"bad": {1, 2, 3}})  # sets are not JSON
        assert self._tmp_files(tmp_path) == []
        assert not target.exists()

    def test_failing_save_through_cache_leaves_no_temp_files(self, tmp_path):
        store = tmp_path / "cache"
        cache = RunCache(persist_path=str(store))
        # An extra that json.dump accepts per-key probing but that explodes
        # mid-dump is hard to build; an unserializable *extra* is filtered,
        # so break serialization at the payload level instead: non-float
        # time objects raise inside json.dump.
        cache.put("k", result(time=float("nan")), has_output=False)
        cache._store["k"].result = RunResult(
            output=None, time={1, 2}, accuracy=1.0, extra={}
        )
        with pytest.raises(TypeError):
            cache.save()
        assert self._tmp_files(tmp_path) == []

    def test_unlink_failure_does_not_mask_original_error(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_module

        def raising_unlink(_path):
            raise OSError("swept by another process")

        monkeypatch.setattr(cache_module.os, "unlink", raising_unlink)
        target = tmp_path / "store" / "shard.json"
        # The original serialization error must surface, not the unlink OSError.
        with pytest.raises(TypeError):
            cache_module._atomic_write_json(str(target), {"bad": {1, 2, 3}})

    def test_interrupt_during_write_cleans_up_and_reraises(self, tmp_path, monkeypatch):
        """BaseExceptions (KeyboardInterrupt) also clean up, then re-raise."""
        from repro.runtime import cache as cache_module

        def interrupted_dump(_payload, _handle):
            raise KeyboardInterrupt

        monkeypatch.setattr(cache_module.json, "dump", interrupted_dump)
        target = tmp_path / "store" / "shard.json"
        with pytest.raises(KeyboardInterrupt):
            cache_module._atomic_write_json(str(target), {"fine": 1})
        assert self._tmp_files(tmp_path) == []


class TestCappedConcurrentStores:
    """Satellite coverage: capped LRU caches sharing one store via union-merge."""

    def test_two_capped_caches_union_merge_with_evictions(self, tmp_path):
        """Both writers evict most entries before saving; the store must
        still end up holding the union of everything each one persisted."""
        store = tmp_path / "cache"
        first = RunCache(max_entries=4, persist_path=str(store))
        second = RunCache(max_entries=4, persist_path=str(store))
        for i in range(12):
            first.put(f"first:{i}", result(time=float(i)), has_output=False)
            first.save()  # persist before the cap can evict this entry
            second.put(f"second:{i}", result(time=float(100 + i)), has_output=False)
            second.save()
        assert first.stats()["evictions"] > 0
        assert second.stats()["evictions"] > 0
        fresh = RunCache(persist_path=str(store))
        fresh.load()
        for i in range(12):
            assert fresh.get(f"first:{i}").time == float(i)
            assert fresh.get(f"second:{i}").time == float(100 + i)

    def test_capped_reader_sees_other_writers_entries_via_rereads(self, tmp_path):
        """A capped cache attached to a store another cache keeps extending
        recovers both its own evicted entries and the foreign ones, and
        shard_rereads counts exactly the recoveries from seen shards."""
        store = tmp_path / "cache"
        keys = populated_store(store, n=32)
        reader = RunCache(max_entries=2, persist_path=str(store))
        reader.load()
        for key in keys:  # faults every shard in; cap evicts almost all
            assert reader.get(key) is not None
        writer = RunCache(persist_path=str(store))
        writer.load()
        writer.put("other:new", result(time=555.0), has_output=False)
        writer.save()
        rereads_before = reader.shard_rereads
        # Every persisted key is still reachable from the tiny reader.
        recovered = 0
        for key in keys:
            in_memory = key in reader
            assert reader.get(key) is not None
            if not in_memory:
                recovered += 1
        assert recovered > 0
        assert reader.shard_rereads == rereads_before + recovered
        assert reader.stats()["shard_rereads"] == reader.shard_rereads

    def test_shard_rereads_stat_accurate_after_evictions(self, tmp_path):
        """stats()['shard_rereads'] equals the number of evicted-entry
        recoveries -- no drift from plain hits, cold misses, or faults."""
        store = tmp_path / "cache"
        keys = populated_store(store, n=16)
        capped = RunCache(max_entries=3, persist_path=str(store))
        capped.load()
        for key in keys:
            capped.get(key)  # pass 1: shard faults, no rereads yet... unless
        first_pass = capped.shard_rereads  # ...a fault's own shard evicted it
        expected = first_pass
        for key in keys:  # pass 2: only in-memory survivors avoid a re-read
            if key not in capped:
                expected += 1
            assert capped.get(key) is not None
        assert capped.shard_rereads == expected
        assert capped.stats()["shard_rereads"] == expected
        # Cold misses never count as re-reads.
        assert capped.get("prog:absent") is None
        assert capped.shard_rereads == expected
