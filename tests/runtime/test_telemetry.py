"""Tests for runtime telemetry counters and phase timers."""

import pytest

from repro.runtime import Telemetry


class TestCounters:
    def test_count_accumulates(self):
        telemetry = Telemetry()
        telemetry.count("runs_executed")
        telemetry.count("runs_executed", 4)
        assert telemetry.runs_executed == 5

    def test_hit_rate(self):
        telemetry = Telemetry()
        assert telemetry.hit_rate() == 0.0
        telemetry.count("runs_requested", 10)
        telemetry.count("cache_hits", 3)
        assert telemetry.hit_rate() == pytest.approx(0.3)


class TestPhases:
    def test_phase_records_calls_and_time(self):
        telemetry = Telemetry()
        with telemetry.phase("tune"):
            pass
        with telemetry.phase("tune"):
            pass
        stats = telemetry.phases["tune"]
        assert stats.calls == 2
        assert stats.seconds >= 0.0

    def test_phase_records_even_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.phase("boom"):
                raise RuntimeError("x")
        assert telemetry.phases["boom"].calls == 1


class TestMergeAndSnapshot:
    def test_merge(self):
        a = Telemetry()
        a.count("runs_requested", 2)
        with a.phase("measure"):
            pass
        b = Telemetry()
        b.count("runs_requested", 3)
        b.count("cache_hits", 1)
        with b.phase("measure"):
            pass
        a.merge(b)
        assert a.runs_requested == 5
        assert a.cache_hits == 1
        assert a.phases["measure"].calls == 2

    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.count("runs_requested", 4)
        telemetry.count("cache_hits", 1)
        with telemetry.phase("p"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["runs_requested"] == 4
        assert snapshot["phases"]["p"]["calls"] == 1
        assert snapshot["hit_rate"] == pytest.approx(0.25)

    def test_format_summary_mentions_runs_and_phases(self):
        telemetry = Telemetry()
        telemetry.count("runs_requested", 2)
        with telemetry.phase("measure"):
            pass
        summary = telemetry.format_summary()
        assert "2 requested" in summary
        assert "phase measure" in summary
