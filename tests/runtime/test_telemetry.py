"""Tests for runtime telemetry counters, phase timers, and latency recorders."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Telemetry
from repro.runtime.telemetry import LatencyRecorder


class TestLatencyRecorder:
    def test_percentiles_nearest_rank(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):  # 1ms .. 100ms
            recorder.record(ms / 1000)
        assert recorder.p50 == pytest.approx(0.050)
        assert recorder.p99 == pytest.approx(0.099)
        assert recorder.percentile(1.0) == pytest.approx(0.100)
        assert recorder.mean() == pytest.approx(0.0505)

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(0.25)
        assert recorder.p50 == recorder.p99 == 0.25

    def test_empty_is_zero(self):
        recorder = LatencyRecorder()
        assert recorder.p50 == 0.0
        assert recorder.mean() == 0.0

    def test_sample_cap_drops_but_counts(self):
        recorder = LatencyRecorder(max_samples=3)
        for _ in range(5):
            recorder.record(0.1)
        assert recorder.count == 5
        assert len(recorder.samples) == 3
        assert recorder.dropped == 2
        assert recorder.total_seconds == pytest.approx(0.5)
        assert recorder.snapshot()["dropped_samples"] == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=0)
        recorder = LatencyRecorder()
        recorder.record(0.1)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)


class TestCounters:
    def test_count_accumulates(self):
        telemetry = Telemetry()
        telemetry.count("runs_executed")
        telemetry.count("runs_executed", 4)
        assert telemetry.runs_executed == 5

    def test_hit_rate(self):
        telemetry = Telemetry()
        assert telemetry.hit_rate() == 0.0
        telemetry.count("runs_requested", 10)
        telemetry.count("cache_hits", 3)
        assert telemetry.hit_rate() == pytest.approx(0.3)


class TestPhases:
    def test_phase_records_calls_and_time(self):
        telemetry = Telemetry()
        with telemetry.phase("tune"):
            pass
        with telemetry.phase("tune"):
            pass
        stats = telemetry.phases["tune"]
        assert stats.calls == 2
        assert stats.seconds >= 0.0

    def test_phase_records_even_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.phase("boom"):
                raise RuntimeError("x")
        assert telemetry.phases["boom"].calls == 1


class TestMergeAndSnapshot:
    def test_merge(self):
        a = Telemetry()
        a.count("runs_requested", 2)
        with a.phase("measure"):
            pass
        b = Telemetry()
        b.count("runs_requested", 3)
        b.count("cache_hits", 1)
        with b.phase("measure"):
            pass
        a.merge(b)
        assert a.runs_requested == 5
        assert a.cache_hits == 1
        assert a.phases["measure"].calls == 2

    def test_snapshot_shape(self):
        telemetry = Telemetry()
        telemetry.count("runs_requested", 4)
        telemetry.count("cache_hits", 1)
        with telemetry.phase("p"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["runs_requested"] == 4
        assert snapshot["phases"]["p"]["calls"] == 1
        assert snapshot["hit_rate"] == pytest.approx(0.25)

    def test_record_latency_and_snapshot(self):
        telemetry = Telemetry()
        telemetry.record_latency("serve.selection", 0.010)
        telemetry.record_latency("serve.selection", 0.030)
        snapshot = telemetry.snapshot()
        view = snapshot["latencies"]["serve.selection"]
        assert view["count"] == 2
        assert view["mean_seconds"] == pytest.approx(0.020)

    def test_snapshot_omits_latencies_when_unused(self):
        assert "latencies" not in Telemetry().snapshot()

    def test_merge_folds_latencies(self):
        a = Telemetry()
        a.record_latency("req", 0.010)
        b = Telemetry()
        b.record_latency("req", 0.030)
        b.record_latency("req", 0.050)
        a.merge(b)
        recorder = a.latencies["req"]
        assert recorder.count == 3
        assert recorder.total_seconds == pytest.approx(0.090)
        assert recorder.p50 == pytest.approx(0.030)

    def test_format_summary_mentions_runs_and_phases(self):
        telemetry = Telemetry()
        telemetry.count("runs_requested", 2)
        with telemetry.phase("measure"):
            pass
        summary = telemetry.format_summary()
        assert "2 requested" in summary
        assert "phase measure" in summary


class TestPercentileProperties:
    """Hypothesis properties of the nearest-rank percentile.

    The recorder promises: every percentile is an actual sample (no
    interpolation), bounded by the extremes, monotone in the fraction,
    with p0 = min and p100 = max -- and the cap drops samples without
    losing the count or the running total.
    """

    latencies = st.lists(
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=200,
    )

    @given(samples=latencies, fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_percentile_is_an_observed_sample_within_bounds(
        self, samples, fraction
    ):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        value = recorder.percentile(fraction)
        assert min(samples) <= value <= max(samples)
        assert value in samples

    @given(
        samples=latencies,
        fraction_a=st.floats(min_value=0.0, max_value=1.0),
        fraction_b=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_percentile_is_monotone_in_fraction(
        self, samples, fraction_a, fraction_b
    ):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        low, high = sorted((fraction_a, fraction_b))
        assert recorder.percentile(low) <= recorder.percentile(high)

    @given(samples=latencies)
    @settings(max_examples=100, deadline=None)
    def test_extreme_fractions_hit_min_and_max(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        assert recorder.percentile(0.0) == min(samples)
        assert recorder.percentile(1.0) == max(samples)

    @given(samples=latencies, fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_matches_nearest_rank_definition(self, samples, fraction):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        ordered = sorted(samples)
        rank = min(max(1, math.ceil(fraction * len(ordered))), len(ordered))
        assert recorder.percentile(fraction) == ordered[rank - 1]

    @given(samples=latencies, cap=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_cap_accounting_never_loses_events(self, samples, cap):
        recorder = LatencyRecorder(max_samples=cap)
        for sample in samples:
            recorder.record(sample)
        assert recorder.count == len(samples)
        assert len(recorder.samples) == min(cap, len(samples))
        assert recorder.dropped == max(0, len(samples) - cap)
        assert recorder.total_seconds == pytest.approx(sum(samples))
        # Percentiles summarize only the retained prefix.
        assert recorder.percentile(1.0) == max(samples[:cap])
