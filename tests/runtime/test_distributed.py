"""Tests for the distributed executor: leases, determinism, fault recovery.

The worker-death tests SIGKILL real worker processes; every suicide task is
guarded by a marker file created *before* the kill, so its reassigned (or
serial-fallback) re-execution returns normally instead of killing the test
process.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.core.inputs import ObservedInputSource
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.runtime import (
    DistributedExecutor,
    Runtime,
    SerialExecutor,
    SharedRef,
    get_executor,
)
from repro.runtime.distributed import (
    PROTOCOL_VERSION,
    LeaseError,
    decode_payload,
    encode_payload,
    recv_messages,
)

# Everything here touches real sockets; worker connect races retry inside
# repro.worker.CONNECT_POLICY (see repro.resilience.retry).


# -- module-level task functions (workers import this module to unpickle) --


def _scaled_sum(values, factor):
    return float(sum(values)) * factor


def _double(value):
    return value * 2


def _kill_self_once(marker, value):
    """SIGKILL the executing worker the first time; marker-guarded.

    The marker is created *before* the kill, so the reassigned attempt (or
    a serial re-run in the parent -- which this must never take down) sees
    it and returns normally.
    """
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _slow_once(marker, value, seconds=3.0):
    """Stall well past the lease deadline the first time; marker-guarded."""
    if not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(seconds)
    return value * 2


# -- framing ------------------------------------------------------------


class TestFraming:
    def test_payload_round_trip(self):
        payload = {"a": [1, 2.5, "x"], "b": np.arange(4)}
        decoded = decode_payload(encode_payload(payload))
        assert decoded["a"] == payload["a"]
        np.testing.assert_array_equal(decoded["b"], payload["b"])

    def test_recv_messages_handles_partial_lines(self):
        buffer = bytearray()
        assert recv_messages(buffer, b'{"type": "he') == []
        assert recv_messages(buffer, b'llo"}\n{"type"') == [{"type": "hello"}]
        assert recv_messages(buffer, b': "result"}\n') == [{"type": "result"}]
        assert bytes(buffer) == b""

    def test_recv_messages_multiple_per_read(self):
        buffer = bytearray()
        messages = recv_messages(buffer, b'{"a": 1}\n{"b": 2}\n\n{"c": 3}\n')
        assert messages == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1


# -- executor contract --------------------------------------------------


@pytest.fixture(scope="module")
def sort_setup():
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(6, variant.variant, seed=0)
    import random

    configs = [
        program.default_configuration(),
        program.config_space.sample(random.Random(7)),
    ]
    tasks = [(config, program_input) for config in configs for program_input in inputs]
    return program, configs, tasks


@pytest.fixture(scope="module")
def executor():
    """One two-worker executor shared by the contract tests (spawn is slow)."""
    with DistributedExecutor(workers=2) as ex:
        yield ex


class TestDistributedExecutor:
    def test_run_batch_matches_serial(self, sort_setup, executor):
        program, _configs, tasks = sort_setup
        expected = SerialExecutor().run_batch(program, tasks)
        results = executor.run_batch(program, tasks)
        assert executor.fallback_reason is None
        assert [r.time for r in results] == [r.time for r in expected]
        assert [r.accuracy for r in results] == [r.accuracy for r in expected]

    def test_run_calls_matches_serial_with_shared_refs(self, executor):
        shared = {"payload": list(range(100))}
        calls = [
            (_scaled_sum, (SharedRef("payload"), float(f)), {}) for f in range(1, 6)
        ]
        expected = SerialExecutor().run_calls(calls, shared=shared)
        assert executor.run_calls(calls, shared=shared) == expected
        assert executor.fallback_reason is None

    def test_empty_batches(self, sort_setup, executor):
        program, _configs, _tasks = sort_setup
        assert executor.run_batch(program, []) == []
        assert executor.run_calls([]) == []

    def test_lease_counters_progress(self, sort_setup, executor):
        program, _configs, tasks = sort_setup
        before = executor.lease_stats.get("leases_issued", 0)
        executor.run_batch(program, tasks)
        stats = executor.lease_stats
        assert stats["leases_issued"] > before
        assert stats["workers_spawned"] >= 2
        assert stats["worker_deaths"] == 0

    def test_unpicklable_program_falls_back_to_serial(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])
        program = PetaBricksProgram(
            "local", space, lambda config, _input: charge(float(config["x"]))
        )
        tasks = [(program.default_configuration(), None)] * 3
        with DistributedExecutor(workers=2) as ex:
            results = ex.run_batch(program, tasks)
            assert ex.fallback_reason is not None
            assert "not picklable" in ex.fallback_reason
            # The coordinator was never started for a serial fallback.
            assert ex.lease_stats == {}
        assert [r.time for r in results] == [3.0, 3.0, 3.0]

    def test_task_error_propagates_as_lease_error(self, executor):
        # The worker ships its traceback back; the coordinator surfaces it.
        with pytest.raises(LeaseError, match="ZeroDivisionError"):
            executor.run_calls([(_raise_zero_division, (), {})])

    def test_get_executor_spawns_distributed(self):
        ex = get_executor("distributed", workers=1)
        assert isinstance(ex, DistributedExecutor)
        assert ex.workers == 1
        ex.close()


def _raise_zero_division():
    return 1 // 0


# -- descriptor (rows) path ---------------------------------------------


class TestDistributedMeasure:
    def test_measure_matches_serial_and_syncs_cache(self, sort_setup):
        program, configs, _tasks = sort_setup
        variant = get_benchmark("sort2")
        source = variant.benchmark.input_source(8, variant.variant, seed=0)
        with Runtime.create(executor="serial") as serial_rt:
            expected = serial_rt.measure(program, configs, source)
        rt = Runtime.create(executor="distributed", workers=2, batch_chunk=6)
        try:
            got = rt.measure(program, configs, source)
            np.testing.assert_array_equal(expected["times"], got["times"])
            np.testing.assert_array_equal(expected["accuracies"], got["accuracies"])
            stats = rt.stats()
            # Worker measurements were folded into the coordinator cache...
            assert stats["cache"]["entries"] == len(source) * len(configs)
            # ...and the lease telemetry surfaced.
            assert stats["distributed"]["leases_issued"] >= 1
            assert "measure.distributed" in stats["telemetry"]["phases"]
            # The folded entries answer run_pairs lookups without executing.
            executed_before = rt.telemetry.runs_executed
            pairs = [(configs[0], source.materialize(0))]
            recalled = rt.run_pairs(program, pairs)
            assert recalled[0].time == expected["times"][0, 0]
            assert rt.telemetry.runs_executed == executed_before
        finally:
            rt.close()

    def test_plain_lists_keep_the_pair_path(self, sort_setup):
        """A materialized input list must not take the descriptor path."""
        program, configs, _tasks = sort_setup
        variant = get_benchmark("sort2")
        inputs = variant.benchmark.generate_inputs(4, variant.variant, seed=0)
        rt = Runtime.create(executor="distributed", workers=1)
        try:
            assert not rt._rows_distributable(program, configs, inputs)
            with Runtime.create(executor="serial") as serial_rt:
                expected = serial_rt.measure(program, configs, inputs)
            got = rt.measure(program, configs, inputs)
            np.testing.assert_array_equal(expected["times"], got["times"])
        finally:
            rt.close()

    def test_observed_source_pickles_without_observer(self):
        import pickle

        variant = get_benchmark("sort2")
        source = variant.benchmark.input_source(4, variant.variant, seed=0)
        seen = []
        observed = ObservedInputSource(source, seen.append)
        clone = pickle.loads(pickle.dumps(observed))
        # Identical materializations; the clone's observer is silent.
        np.testing.assert_array_equal(observed.materialize(2), clone.materialize(2))
        assert len(seen) == 1  # only the original observed


# -- fault injection -----------------------------------------------------


class TestWorkerDeathRecovery:
    def test_sigkilled_worker_chunk_is_reassigned(self, tmp_path):
        marker = str(tmp_path / "killed")
        with DistributedExecutor(workers=2) as ex:
            calls = [(_kill_self_once, (marker, v), {}) for v in range(5)]
            results = ex.run_calls(calls)
            assert results == [v * 2 for v in range(5)]
            stats = ex.lease_stats
            assert stats["leases_reassigned"] >= 1
            assert stats["worker_deaths"] >= 1
            assert stats["workers_spawned"] >= 3  # replacement spawned
            # The executor stays healthy for the next batch.
            assert ex.run_calls([(_double, (21,), {})]) == [42]
            assert ex.fallback_reason is None

    def test_expired_lease_is_reassigned_to_live_worker(self, tmp_path):
        marker = str(tmp_path / "slow")
        # Exactly one slow call (no marker races), a deadline well under its
        # stall, and a generous retry bound: the sleeping worker may soak up
        # several reassignments before a live one (or its own wake-up)
        # answers, and none of that may fail the batch.
        with DistributedExecutor(
            workers=2, lease_timeout=0.4, max_lease_retries=10
        ) as ex:
            calls = [(_slow_once, (marker, 0, 2.0), {})]
            calls += [(_double, (v,), {}) for v in range(1, 4)]
            results = ex.run_calls(calls)
            assert results == [0, 2, 4, 6]
            stats = ex.lease_stats
            assert stats["leases_reassigned"] >= 1
            assert stats["worker_deaths"] == 0  # hung, not dead

    def test_chunk_that_always_kills_exhausts_retries(self, tmp_path):
        missing_marker = str(tmp_path / "never-created" / "marker")
        with DistributedExecutor(workers=1, max_lease_retries=2) as ex:
            with pytest.raises(LeaseError, match="retries"):
                ex.run_calls([(_kill_self_always, (missing_marker,), {})])
            assert ex.lease_stats["worker_deaths"] >= 1


def _kill_self_always(_marker):
    os.kill(os.getpid(), signal.SIGKILL)


# -- external workers -----------------------------------------------------


class TestExternalWorkerAttach:
    def test_python_m_repro_worker_serves_leases(self, sort_setup):
        program, _configs, tasks = sort_setup
        expected = SerialExecutor().run_batch(program, tasks[:4])
        with DistributedExecutor(workers=0) as ex:
            host, port = ex.address
            env = dict(os.environ)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.worker", "--connect", f"{host}:{port}"],
                env=env,
            )
            try:
                results = ex.run_batch(program, tasks[:4])
                assert [r.time for r in results] == [r.time for r in expected]
                assert ex.lease_stats["workers_attached"] == 1
                assert ex.lease_stats["workers_spawned"] == 0
            finally:
                ex.close()
                proc.wait(timeout=10)
        assert proc.returncode == 0

    def test_worker_cli_rejects_bad_address(self):
        from repro.worker import main

        with pytest.raises(SystemExit):
            main(["--connect", "no-port-here"])


class TestPortRebind:
    """A closed coordinator's fixed port must be immediately rebindable."""

    def test_coordinator_rebinds_same_port_after_close(self):
        import socket as socket_module

        from repro.runtime.distributed import Coordinator

        first = Coordinator(workers=0)
        host, port = first.address
        # Leave connection state behind on the old incarnation's port, the
        # way a dying deployment would.
        probe = socket_module.create_connection((host, port))
        first.close()
        probe.close()
        with Coordinator(workers=0, port=port) as second:
            assert second.address == (host, port)

    def test_coordinator_rejects_occupied_port(self):
        from repro.runtime.distributed import Coordinator

        with Coordinator(workers=0) as holder:
            _host, port = holder.address
            with pytest.raises(OSError):
                Coordinator(workers=0, port=port)

    def test_distributed_executor_restart_on_fixed_port(self, sort_setup):
        program, _configs, tasks = sort_setup
        expected = SerialExecutor().run_batch(program, tasks[:2])
        with DistributedExecutor(workers=1) as first:
            first.run_batch(program, tasks[:2])
            _host, port = first.address
        # The restarted executor must come up on the exact same port and
        # serve leases -- the contract a worker fleet's --connect flag and a
        # colocated serving process both rely on.
        with DistributedExecutor(workers=1, port=port) as second:
            assert second.address[1] == port
            results = second.run_batch(program, tasks[:2])
        assert [r.time for r in results] == [r.time for r in expected]


# -- end-to-end determinism ----------------------------------------------


def tiny_config(executor: str, **overrides) -> ExperimentConfig:
    settings = dict(
        n_inputs=24,
        n_clusters=3,
        tuner_generations=2,
        tuner_population=5,
        tuning_neighbors=2,
        max_subsets=12,
        seed=0,
        executor=executor,
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


@pytest.mark.parametrize("test_name", ["sort2", "binpacking"])
def test_run_experiment_bit_identical_to_serial(test_name):
    """The ISSUE acceptance bar: distributed == serial, end to end."""
    serial = run_experiment(test_name, config=tiny_config("serial"))
    distributed = run_experiment(
        test_name, config=tiny_config("distributed", dist_workers=2)
    )
    assert (
        serial.training.production_classifier.name
        == distributed.training.production_classifier.name
    )
    np.testing.assert_array_equal(
        serial.training.dataset.times, distributed.training.dataset.times
    )
    for name, outcome in serial.methods.items():
        np.testing.assert_array_equal(
            outcome.times, distributed.methods[name].times
        )
    dist_stats = distributed.runtime_stats.get("distributed")
    assert dist_stats is not None
    assert dist_stats["leases_issued"] >= 1
    assert dist_stats["worker_deaths"] == 0
