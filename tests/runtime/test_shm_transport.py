"""Tests for the shared-memory measurement-matrix transport.

The tentpole's third layer: ``ProcessExecutor.run_measure`` ships chunk
result matrices out of workers through ``multiprocessing.shared_memory``
(with a pickled fallback), and ``Runtime.measure`` folds whole chunks into
the N x K matrices by array slicing.  Every path must stay bit-identical to
the serial reference.
"""

import random

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.lang.config import ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.program import PetaBricksProgram
from repro.runtime import ProcessExecutor, Runtime, SerialExecutor, ThreadExecutor
import repro.runtime.executors as executors_module
from repro.runtime.executors import (
    _process_worker_init,
    _process_worker_measure,
)


@pytest.fixture(scope="module")
def sort_setup():
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(6, variant.variant, seed=0)
    configs = [program.default_configuration()]
    configs.append(program.config_space.sample(random.Random(7)))
    return program, configs, inputs


def serial_matrices(program, configs, inputs):
    return Runtime(executor=SerialExecutor(), cache=None).measure(
        program, configs, inputs
    )


def assert_identical(actual, expected):
    assert np.array_equal(actual["times"], expected["times"])
    assert np.array_equal(actual["accuracies"], expected["accuracies"])


class TestRunMeasure:
    def test_matches_serial_bitwise(self, sort_setup):
        program, configs, inputs = sort_setup
        tasks = [(c, i) for i in inputs for c in configs]
        expected = SerialExecutor().run_batch(program, tasks)
        with ProcessExecutor(workers=2) as executor:
            matrices = executor.run_measure(program, tasks, columns=len(configs))
            assert executor.fallback_reason is None
        assert matrices is not None
        times, accuracies = matrices
        assert times.tolist() == [r.time for r in expected]
        assert accuracies.tolist() == [r.accuracy for r in expected]

    def test_empty_batch(self, sort_setup):
        program, _, _ = sort_setup
        with ProcessExecutor(workers=2) as executor:
            times, accuracies = executor.run_measure(program, [])
        assert times.size == 0 and accuracies.size == 0

    def test_unpicklable_program_returns_none(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])
        program = PetaBricksProgram(
            "local", space, lambda config, _input: charge(float(config["x"]))
        )
        tasks = [(program.default_configuration(), None)] * 3
        with ProcessExecutor(workers=2) as executor:
            assert executor.run_measure(program, tasks) is None
            assert "not picklable" in executor.fallback_reason

    def test_pickled_fallback_when_shm_unavailable(self, sort_setup, monkeypatch):
        program, configs, inputs = sort_setup
        tasks = [(c, i) for i in inputs for c in configs]
        expected = SerialExecutor().run_batch(program, tasks)
        monkeypatch.setattr(executors_module, "_shm_module", None)
        with ProcessExecutor(workers=2) as executor:
            times, accuracies = executor.run_measure(
                program, tasks, columns=len(configs)
            )
            assert executor.fallback_reason is None
        assert times.tolist() == [r.time for r in expected]
        assert accuracies.tolist() == [r.accuracy for r in expected]


class TestWorkerLease:
    """The worker-side lease protocol, driven in-process."""

    def _program(self):
        space = ConfigurationSpace([IntegerParameter("units", 1, 1000)])

        def run(config, value):
            charge(float(config["units"]) * value)
            return value

        return PetaBricksProgram("charger", space, run)

    def test_writes_slice_into_shared_block(self):
        shm_module = pytest.importorskip("multiprocessing.shared_memory")
        program = self._program()
        config = program.default_configuration().with_updates(units=3)
        tasks = [(config, value) for value in (1.0, 2.0, 5.0)]
        segment = shm_module.SharedMemory(create=True, size=2 * 5 * 8)
        try:
            _process_worker_init(program)
            kind, start, payload = _process_worker_measure(
                (2, tasks, segment.name, 5)
            )
            assert (kind, start, payload) == ("shm", 2, None)
            matrix = np.ndarray((2, 5), dtype=np.float64, buffer=segment.buf)
            assert matrix[0, 2:5].tolist() == [3.0, 6.0, 15.0]
            assert matrix[1, 2:5].tolist() == [1.0, 1.0, 1.0]
        finally:
            _process_worker_init(None)
            segment.close()
            segment.unlink()

    def test_pickled_payload_without_segment(self):
        program = self._program()
        config = program.default_configuration().with_updates(units=2)
        tasks = [(config, value) for value in (1.0, 4.0)]
        _process_worker_init(program)
        try:
            kind, start, block = _process_worker_measure((0, tasks, None, 2))
        finally:
            _process_worker_init(None)
        assert kind == "data" and start == 0
        assert block[0].tolist() == [2.0, 8.0]

    def test_bad_segment_name_falls_back_to_pickle(self):
        program = self._program()
        config = program.default_configuration()
        tasks = [(config, 2.0)]
        _process_worker_init(program)
        try:
            kind, start, block = _process_worker_measure(
                (0, tasks, "repro-no-such-segment", 1)
            )
        finally:
            _process_worker_init(None)
        assert kind == "data"
        assert block.shape == (2, 1)


class TestMeasureMatrixPath:
    def test_process_measure_matches_serial(self, sort_setup):
        program, configs, inputs = sort_setup
        expected = serial_matrices(program, configs, inputs)
        with Runtime(executor=ProcessExecutor(workers=2), cache=None) as runtime:
            actual = runtime.measure(program, configs, inputs)
            assert runtime.executor.fallback_reason is None
        assert_identical(actual, expected)

    def test_chunked_process_measure_matches_serial(self, sort_setup):
        program, configs, inputs = sort_setup
        expected = serial_matrices(program, configs, inputs)
        with Runtime(
            executor=ProcessExecutor(workers=2), cache=None, batch_chunk=5
        ) as runtime:
            actual = runtime.measure(program, configs, inputs)
            counters = runtime.telemetry.snapshot()["counters"]
        assert_identical(actual, expected)
        # 6 inputs x 2 configs, 5 // 2 = 2 rows per chunk -> 3 chunks.
        assert counters["chunks_dispatched"] == 3
        assert counters["runs_requested"] == 12
        assert counters["runs_executed"] == 12

    def test_thread_measure_matches_serial(self, sort_setup):
        program, configs, inputs = sort_setup
        expected = serial_matrices(program, configs, inputs)
        with Runtime(executor=ThreadExecutor(workers=4), cache=None) as runtime:
            assert_identical(runtime.measure(program, configs, inputs), expected)

    def test_caching_runtime_keeps_pair_path(self, sort_setup):
        """A caching runtime must fill its run cache, so no matrix transport."""
        program, configs, inputs = sort_setup
        expected = serial_matrices(program, configs, inputs)
        from repro.runtime.cache import RunCache

        with Runtime(
            executor=ProcessExecutor(workers=2), cache=RunCache()
        ) as runtime:
            assert not runtime._matrix_transportable(program, configs, inputs)
            assert_identical(runtime.measure(program, configs, inputs), expected)
            assert len(runtime.cache) == 12
            # A repeat is answered from the cache, not re-executed.
            assert_identical(runtime.measure(program, configs, inputs), expected)
            counters = runtime.telemetry.snapshot()["counters"]
        assert counters["cache_hits"] == 12
        assert counters["runs_executed"] == 12

    def test_unpicklable_program_falls_back_to_pair_path(self):
        space = ConfigurationSpace([IntegerParameter("x", 1, 5)])
        program = PetaBricksProgram(
            "local", space, lambda config, value: charge(float(config["x"]) * value)
        )
        configs = [program.default_configuration()]
        inputs = [1.0, 2.0, 3.0]
        expected = serial_matrices(program, configs, inputs)
        with Runtime(executor=ProcessExecutor(workers=2), cache=None) as runtime:
            actual = runtime.measure(program, configs, inputs)
            assert "not picklable" in runtime.executor.fallback_reason
        assert_identical(actual, expected)

    def test_shm_unavailable_measure_still_identical(self, sort_setup, monkeypatch):
        program, configs, inputs = sort_setup
        expected = serial_matrices(program, configs, inputs)
        monkeypatch.setattr(executors_module, "_shm_module", None)
        with Runtime(executor=ProcessExecutor(workers=2), cache=None) as runtime:
            assert_identical(runtime.measure(program, configs, inputs), expected)

    def test_input_source_rows_materialize_once(self, sort_setup):
        """Slicing an InputSource must keep per-row single materialization."""
        program, configs, _ = sort_setup
        variant = get_benchmark("sort2")
        source = variant.benchmark.input_generators()["synthetic"].source(6, seed=0)
        expected = serial_matrices(program, configs, source.materialized())
        with Runtime(
            executor=ProcessExecutor(workers=2), cache=None, batch_chunk=4
        ) as runtime:
            assert_identical(runtime.measure(program, configs, source), expected)
