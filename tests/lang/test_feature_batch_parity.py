"""Hypothesis parity: ``FeatureSet.extract_batch`` vs per-input ``extract_all``.

The tentpole's first layer replaces the per-input, per-feature scalar
extraction loop with one batched pass per chunk.  The contract is exact:
row ``i`` of ``extract_batch(values)`` -- both the feature values and the
extraction costs -- must equal ``extract_vector(values[i])`` bit for bit,
on NaN-bearing and degenerate inputs included.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks_suite.sort.features import build_feature_set
from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
# Raw element pool: finite values plus the hazards (NaN, infinities, -0.0)
# the vectorized kernels special-case.
element = st.one_of(
    finite,
    st.sampled_from([float("nan"), float("inf"), float("-inf"), -0.0, 0.0]),
)


@st.composite
def input_batches(draw):
    """A batch of 1-6 sort inputs with adversarial element mixes."""
    n = draw(st.integers(min_value=1, max_value=6))
    batch = []
    for _ in range(n):
        length = draw(st.integers(min_value=0, max_value=40))
        values = draw(
            st.lists(element, min_size=length, max_size=length)
        )
        batch.append(np.asarray(values, dtype=float))
    return batch


@settings(max_examples=60, deadline=None)
@given(input_batches())
def test_sort_features_batch_equals_scalar(batch):
    feature_set = build_feature_set()
    features, costs = feature_set.extract_batch(batch)
    assert features.shape == (len(batch), feature_set.num_features())
    for row, value in enumerate(batch):
        expected_values, expected_costs = feature_set.extract_vector(value)
        np.testing.assert_array_equal(features[row], expected_values)
        np.testing.assert_array_equal(costs[row], expected_costs)


@settings(max_examples=40, deadline=None)
@given(input_batches())
def test_batch_rows_match_extract_all_measurements(batch):
    feature_set = build_feature_set()
    features, costs = feature_set.extract_batch(batch)
    names = feature_set.feature_names()
    for row, value in enumerate(batch):
        measurements = feature_set.extract_all(value)
        assert [f"{m.property_name}@{m.level}" for m in measurements] == names
        scalar_values = np.array([m.value for m in measurements])
        scalar_costs = np.array([m.cost for m in measurements])
        np.testing.assert_array_equal(features[row], scalar_values)
        np.testing.assert_array_equal(costs[row], scalar_costs)


def _charging_feature(value, fraction):
    """A property whose cost depends on the value -- cost isolation probe."""
    amount = float(len(value)) * fraction
    charge(amount, "probe")
    return amount


def test_batch_cost_counter_isolated_per_cell():
    """Counter resets between cells: no charge bleeds into a neighbor."""
    feature_set = FeatureSet(
        [
            FeatureExtractor(
                "probe", _charging_feature, levels=2, level_fractions=[0.5, 1.0]
            )
        ]
    )
    batch = [np.zeros(2), np.zeros(10), np.zeros(0)]
    features, costs = feature_set.extract_batch(batch)
    np.testing.assert_array_equal(features, [[1.0, 2.0], [5.0, 10.0], [0.0, 0.0]])
    np.testing.assert_array_equal(costs, features)


def test_batch_of_nothing():
    feature_set = build_feature_set()
    features, costs = feature_set.extract_batch([])
    assert features.shape == (0, feature_set.num_features())
    assert costs.shape == (0, feature_set.num_features())


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.lists(element, min_size=1, max_size=12), min_size=1, max_size=4
    )
)
def test_nan_rows_round_trip(rows):
    """Rows built purely from the hazard pool still match bit for bit."""
    batch = [np.asarray(row, dtype=float) for row in rows]
    feature_set = build_feature_set()
    features, costs = feature_set.extract_batch(batch)
    for index, value in enumerate(batch):
        expected_values, expected_costs = feature_set.extract_vector(value)
        np.testing.assert_array_equal(features[index], expected_values)
        np.testing.assert_array_equal(costs[index], expected_costs)
    assert not math.isnan(costs.sum())  # costs are real work units, never NaN
