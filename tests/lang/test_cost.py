"""Tests for the work-unit cost accounting."""

import pytest

from repro.lang.cost import CostCounter, charge, current_counter, scoped_counter


class TestCostCounter:
    def test_starts_empty(self):
        counter = CostCounter()
        assert counter.total == 0.0
        assert counter.by_category == {}

    def test_charge_accumulates_total(self):
        counter = CostCounter()
        counter.charge(3.0, "compare")
        counter.charge(2.0, "move")
        assert counter.total == pytest.approx(5.0)

    def test_charge_tracks_categories(self):
        counter = CostCounter()
        counter.charge(3.0, "compare")
        counter.charge(2.0, "compare")
        counter.charge(1.0, "move")
        assert counter.by_category["compare"] == pytest.approx(5.0)
        assert counter.by_category["move"] == pytest.approx(1.0)

    def test_negative_charge_rejected(self):
        counter = CostCounter()
        with pytest.raises(ValueError):
            counter.charge(-1.0)

    def test_merge_combines_counters(self):
        first = CostCounter()
        first.charge(2.0, "a")
        second = CostCounter()
        second.charge(3.0, "a")
        second.charge(1.0, "b")
        first.merge(second)
        assert first.total == pytest.approx(6.0)
        assert first.by_category == {"a": pytest.approx(5.0), "b": pytest.approx(1.0)}

    def test_reset_clears_everything(self):
        counter = CostCounter()
        counter.charge(5.0)
        counter.reset()
        assert counter.total == 0.0
        assert counter.by_category == {}

    def test_snapshot_and_since(self):
        counter = CostCounter()
        counter.charge(4.0)
        mark = counter.snapshot()
        counter.charge(6.0)
        assert counter.since(mark) == pytest.approx(6.0)

    def test_copy_is_independent(self):
        counter = CostCounter()
        counter.charge(1.0, "x")
        clone = counter.copy()
        clone.charge(9.0, "x")
        assert counter.total == pytest.approx(1.0)
        assert clone.total == pytest.approx(10.0)


class TestScopedCounter:
    def test_charge_outside_scope_is_dropped(self):
        assert current_counter() is None
        charge(100.0)  # must not raise
        assert current_counter() is None

    def test_charge_inside_scope_accumulates(self):
        with scoped_counter() as counter:
            charge(2.5, "work")
            charge(1.5, "work")
        assert counter.total == pytest.approx(4.0)

    def test_scope_restores_previous_counter(self):
        with scoped_counter() as outer:
            charge(1.0)
            with scoped_counter() as inner:
                charge(10.0)
            charge(2.0)
        assert inner.total == pytest.approx(10.0)
        assert outer.total == pytest.approx(3.0)
        assert current_counter() is None

    def test_scope_accepts_existing_counter(self):
        counter = CostCounter()
        counter.charge(1.0)
        with scoped_counter(counter):
            charge(2.0)
        assert counter.total == pytest.approx(3.0)

    def test_scope_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with scoped_counter():
                raise RuntimeError("boom")
        assert current_counter() is None
