"""Tests for accuracy metrics and the dual-threshold requirement."""

import pytest

from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement, always_accurate


class TestAccuracyMetric:
    def test_score_calls_function(self):
        metric = AccuracyMetric("ratio", lambda inp, out: out / inp)
        assert metric.score(4.0, 2.0) == pytest.approx(0.5)

    def test_always_accurate(self):
        metric = always_accurate()
        assert metric.score(object(), object()) == 1.0


class TestAccuracyRequirement:
    def test_run_is_accurate_uses_threshold(self):
        requirement = AccuracyRequirement(accuracy_threshold=0.8)
        assert requirement.run_is_accurate(0.8)
        assert requirement.run_is_accurate(0.95)
        assert not requirement.run_is_accurate(0.79)

    def test_satisfaction_rate(self):
        requirement = AccuracyRequirement(accuracy_threshold=0.5)
        assert requirement.satisfaction_rate([0.4, 0.6, 0.7, 0.2]) == pytest.approx(0.5)

    def test_satisfaction_rate_empty_is_one(self):
        requirement = AccuracyRequirement(accuracy_threshold=0.5)
        assert requirement.satisfaction_rate([]) == 1.0

    def test_is_satisfied_uses_satisfaction_threshold(self):
        requirement = AccuracyRequirement(
            accuracy_threshold=0.5, satisfaction_threshold=0.75
        )
        assert requirement.is_satisfied([0.6, 0.6, 0.6, 0.4])
        assert not requirement.is_satisfied([0.6, 0.6, 0.4, 0.4])

    def test_disabled_requirement_always_satisfied(self):
        requirement = AccuracyRequirement.disabled()
        assert requirement.run_is_accurate(-100.0)
        assert requirement.satisfaction_rate([-1.0, -2.0]) == 1.0
        assert requirement.is_satisfied([-1.0])

    def test_paper_default_satisfaction_threshold(self):
        """The paper sets the satisfaction threshold to 95% for all experiments."""
        assert AccuracyRequirement(accuracy_threshold=0.8).satisfaction_threshold == 0.95
