"""Tests for selectors and the selector configuration-space parameter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.choices import Choice, ChoiceSite
from repro.lang.selector import Selector, SelectorParameter, SelectorRule


def make_site():
    site = ChoiceSite("sort")
    site.add(Choice("insertion", lambda x: x, terminal=True))
    site.add(Choice("quick", lambda x: x))
    site.add(Choice("merge", lambda x: x))
    return site


class TestSelector:
    def test_select_uses_first_matching_rule(self):
        selector = Selector(
            rules=(SelectorRule(600, "insertion"), SelectorRule(1420, "quick")),
            fallback="merge",
        )
        assert selector.select(10) == "insertion"
        assert selector.select(599) == "insertion"
        assert selector.select(600) == "quick"
        assert selector.select(1419) == "quick"
        assert selector.select(5000) == "merge"

    def test_paper_figure2_example(self):
        """The selector in Figure 2: merge above 1420, quick above 600, else insertion."""
        selector = Selector(
            rules=(SelectorRule(600, "InsertionSort"), SelectorRule(1420, "QuickSort")),
            fallback="MergeSort",
        )
        assert selector.select(100) == "InsertionSort"
        assert selector.select(1000) == "QuickSort"
        assert selector.select(100000) == "MergeSort"

    def test_single_selector(self):
        selector = Selector.single("quick")
        assert selector.depth == 0
        assert selector.select(0) == "quick"
        assert selector.select(10**9) == "quick"

    def test_non_increasing_cutoffs_rejected(self):
        with pytest.raises(ValueError):
            Selector(rules=(SelectorRule(10, "a"), SelectorRule(10, "b")), fallback="c")
        with pytest.raises(ValueError):
            Selector(rules=(SelectorRule(20, "a"), SelectorRule(10, "b")), fallback="c")

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            SelectorRule(-1, "a")

    def test_empty_fallback_rejected(self):
        with pytest.raises(ValueError):
            Selector(rules=(), fallback="")

    def test_choices_used_deduplicates(self):
        selector = Selector(
            rules=(SelectorRule(5, "a"), SelectorRule(10, "a"), SelectorRule(20, "b")),
            fallback="a",
        )
        assert selector.choices_used() == ("a", "b")

    def test_describe_mentions_all_rules(self):
        selector = Selector(rules=(SelectorRule(5, "a"),), fallback="b")
        text = selector.describe()
        assert "n<5:a" in text and "else:b" in text


class TestSelectorParameter:
    def test_sample_is_valid(self, rng):
        parameter = SelectorParameter("sel", make_site(), max_depth=3, max_cutoff=4096)
        for _ in range(100):
            assert parameter.validate(parameter.sample(rng))

    def test_mutation_preserves_validity(self, rng):
        parameter = SelectorParameter("sel", make_site(), max_depth=3, max_cutoff=4096)
        selector = parameter.sample(rng)
        for _ in range(200):
            selector = parameter.mutate(selector, rng)
            assert parameter.validate(selector)

    def test_default_is_valid(self):
        parameter = SelectorParameter("sel", make_site())
        assert parameter.validate(parameter.default())

    def test_default_prefers_terminal_base_case(self):
        parameter = SelectorParameter("sel", make_site())
        default = parameter.default()
        assert default.depth >= 1
        assert default.rules[0].choice == "insertion"

    def test_validate_rejects_unknown_choice(self):
        parameter = SelectorParameter("sel", make_site())
        bogus = Selector(rules=(), fallback="bogus")
        assert not parameter.validate(bogus)

    def test_validate_rejects_excess_depth(self):
        parameter = SelectorParameter("sel", make_site(), max_depth=1, max_cutoff=100)
        deep = Selector(
            rules=(SelectorRule(5, "insertion"), SelectorRule(10, "quick")),
            fallback="merge",
        )
        assert not parameter.validate(deep)

    def test_validate_rejects_cutoff_out_of_range(self):
        parameter = SelectorParameter("sel", make_site(), max_cutoff=100, min_cutoff=4)
        assert not parameter.validate(
            Selector(rules=(SelectorRule(2, "insertion"),), fallback="merge")
        )
        assert not parameter.validate(
            Selector(rules=(SelectorRule(200, "insertion"),), fallback="merge")
        )

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            SelectorParameter("sel", ChoiceSite("empty"))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            SelectorParameter("sel", make_site(), min_cutoff=10, max_cutoff=5)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), sizes=st.lists(st.integers(0, 10**6), min_size=1, max_size=20))
def test_property_selector_always_returns_known_choice(seed, sizes):
    """Property: a sampled selector maps every size to a registered alternative."""
    parameter = SelectorParameter("sel", make_site(), max_depth=4, max_cutoff=100_000)
    selector = parameter.sample(random.Random(seed))
    for size in sizes:
        assert selector.select(size) in ("insertion", "quick", "merge")


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_selector_is_monotone_partition(seed):
    """Property: rules partition sizes monotonically (choice changes only at cutoffs)."""
    parameter = SelectorParameter("sel", make_site(), max_depth=4, max_cutoff=10_000)
    selector = parameter.sample(random.Random(seed))
    boundaries = [rule.cutoff for rule in selector.rules]
    previous = 0
    for boundary, rule in zip(boundaries, selector.rules):
        for size in (previous, max(previous, boundary - 1)):
            assert selector.select(size) == rule.choice
        previous = boundary
    assert selector.select(10_000 + 1) == selector.fallback
