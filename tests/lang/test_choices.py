"""Tests for the either...or choice-site construct."""

import pytest

from repro.lang.choices import Choice, ChoiceSite


class TestChoice:
    def test_call_forwards_to_function(self):
        choice = Choice("double", lambda x: 2 * x)
        assert choice(21) == 42

    def test_terminal_flag_defaults_false(self):
        assert not Choice("x", lambda: None).terminal


class TestChoiceSite:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            ChoiceSite("")

    def test_add_and_lookup(self):
        site = ChoiceSite("s")
        choice = Choice("a", lambda: 1)
        site.add(choice)
        assert site.get("a") is choice
        assert "a" in site
        assert len(site) == 1

    def test_duplicate_names_rejected(self):
        site = ChoiceSite("s", [Choice("a", lambda: 1)])
        with pytest.raises(ValueError):
            site.add(Choice("a", lambda: 2))

    def test_names_preserve_registration_order(self):
        site = ChoiceSite("s", [Choice("b", lambda: 1), Choice("a", lambda: 2)])
        assert site.names == ("b", "a")

    def test_terminal_names(self):
        site = ChoiceSite(
            "s",
            [
                Choice("base", lambda: 1, terminal=True),
                Choice("recursive", lambda: 2),
            ],
        )
        assert site.terminal_names == ("base",)

    def test_alternative_decorator_registers(self):
        site = ChoiceSite("s")

        @site.alternative("doubler", terminal=True)
        def doubler(x):
            return 2 * x

        assert "doubler" in site
        assert site.get("doubler")(4) == 8
        assert site.terminal_names == ("doubler",)

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            ChoiceSite("s").get("missing")
