"""Tests for the tunable keyword and its lowering to parameters."""

import pytest

from repro.lang.config import CategoricalParameter, FloatParameter, IntegerParameter
from repro.lang.tunables import Tunable


class TestTunable:
    def test_float_tunable_lowers_to_float_parameter(self):
        parameter = Tunable("level", 0.0, 1.0).to_parameter()
        assert isinstance(parameter, FloatParameter)
        assert parameter.name == "level"
        assert parameter.low == 0.0 and parameter.high == 1.0

    def test_integer_tunable_lowers_to_integer_parameter(self):
        parameter = Tunable("cutoff", 2, 1024, integer=True, log_scale=True).to_parameter()
        assert isinstance(parameter, IntegerParameter)
        assert parameter.log_scale

    def test_choice_tunable_lowers_to_categorical(self):
        parameter = Tunable("algo", choices=["a", "b"]).to_parameter()
        assert isinstance(parameter, CategoricalParameter)
        assert parameter.choices == ("a", "b")

    def test_prefix_namespacing(self):
        parameter = Tunable("level", 0.0, 1.0).to_parameter(prefix="sortedness")
        assert parameter.name == "sortedness.level"

    def test_paper_example_level_tunable(self):
        """The Figure-1 example: tunable double level (0.0, 1.0)."""
        tunable = Tunable("level", 0.0, 1.0)
        parameter = tunable.to_parameter()
        assert parameter.validate(0.0)
        assert parameter.validate(1.0)
        assert not parameter.validate(1.5)
