"""Tests for the PetaBricksProgram abstraction."""

import numpy as np
import pytest

from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import Configuration, ConfigurationSpace, IntegerParameter
from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet
from repro.lang.program import PetaBricksProgram


def make_toy_program(with_accuracy: bool = False) -> PetaBricksProgram:
    """A tiny program: 'sort' a list by charging work = iterations * n."""
    space = ConfigurationSpace([IntegerParameter("iterations", 1, 10)])

    def run(config: Configuration, data):
        charge(float(config["iterations"]) * len(data), "work")
        return sorted(data)

    features = FeatureSet(
        [FeatureExtractor("length", lambda d, f: float(len(d)), levels=2)]
    )
    if with_accuracy:
        metric = AccuracyMetric("iters", lambda inp, out: 1.0)
        requirement = AccuracyRequirement(accuracy_threshold=0.5)
    else:
        metric = None
        requirement = None
    return PetaBricksProgram(
        name="toy",
        config_space=space,
        run_func=run,
        features=features,
        accuracy_metric=metric,
        accuracy_requirement=requirement,
    )


class TestPetaBricksProgram:
    def test_run_measures_cost(self):
        program = make_toy_program()
        config = Configuration({"iterations": 3}, space=program.config_space)
        result = program.run(config, [3, 1, 2])
        assert result.output == [1, 2, 3]
        assert result.time == pytest.approx(9.0)

    def test_run_cost_is_isolated_per_run(self):
        program = make_toy_program()
        config = Configuration({"iterations": 2}, space=program.config_space)
        first = program.run(config, [1, 2])
        second = program.run(config, [1, 2])
        assert first.time == pytest.approx(second.time)

    def test_default_accuracy_is_one(self):
        program = make_toy_program()
        config = program.default_configuration()
        assert program.run(config, [1]).accuracy == 1.0
        assert not program.has_variable_accuracy

    def test_variable_accuracy_flag(self):
        program = make_toy_program(with_accuracy=True)
        assert program.has_variable_accuracy

    def test_default_configuration_valid(self):
        program = make_toy_program()
        program.config_space.validate(program.default_configuration().as_dict())

    def test_feature_extraction_available(self):
        program = make_toy_program()
        values, costs = program.features.extract_vector([1, 2, 3, 4])
        assert values.shape == (2,)
        assert np.all(values == 4.0)

    def test_repr_mentions_name(self):
        assert "toy" in repr(make_toy_program())
