"""Tests for configuration spaces, parameters, and configurations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)


class TestIntegerParameter:
    def test_sample_within_bounds(self, rng):
        parameter = IntegerParameter("p", 3, 17)
        for _ in range(100):
            value = parameter.sample(rng)
            assert 3 <= value <= 17

    def test_log_scale_sample_within_bounds(self, rng):
        parameter = IntegerParameter("p", 2, 100_000, log_scale=True)
        for _ in range(100):
            assert 2 <= parameter.sample(rng) <= 100_000 * 1.01

    def test_mutate_stays_in_bounds(self, rng):
        parameter = IntegerParameter("p", 0, 10)
        value = 5
        for _ in range(100):
            value = parameter.mutate(value, rng)
            assert 0 <= value <= 10

    def test_validate(self):
        parameter = IntegerParameter("p", 0, 10)
        assert parameter.validate(0)
        assert parameter.validate(10)
        assert not parameter.validate(11)
        assert not parameter.validate(3.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            IntegerParameter("p", 10, 3)
        with pytest.raises(ValueError):
            IntegerParameter("p", 0, 10, log_scale=True)

    def test_default_is_valid(self):
        parameter = IntegerParameter("p", 3, 17)
        assert parameter.validate(parameter.default())


class TestFloatParameter:
    def test_sample_within_bounds(self, rng):
        parameter = FloatParameter("f", -1.0, 1.0)
        for _ in range(100):
            assert -1.0 <= parameter.sample(rng) <= 1.0

    def test_mutate_stays_in_bounds(self, rng):
        parameter = FloatParameter("f", 0.0, 1.0)
        value = 0.5
        for _ in range(100):
            value = parameter.mutate(value, rng)
            assert 0.0 <= value <= 1.0

    def test_validate_accepts_ints(self):
        parameter = FloatParameter("f", 0.0, 2.0)
        assert parameter.validate(1)
        assert not parameter.validate(3.0)


class TestCategoricalParameter:
    def test_sample_from_choices(self, rng):
        parameter = CategoricalParameter("c", ["a", "b", "c"])
        assert all(parameter.sample(rng) in ("a", "b", "c") for _ in range(50))

    def test_mutate_returns_legal_choice(self, rng):
        parameter = CategoricalParameter("c", ["a", "b", "c"])
        assert all(parameter.mutate("a", rng) in ("a", "b", "c") for _ in range(50))

    def test_single_choice_mutation_is_identity(self, rng):
        parameter = CategoricalParameter("c", ["only"])
        assert parameter.mutate("only", rng) == "only"

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", [])


class TestConfigurationSpace:
    def _space(self):
        return ConfigurationSpace(
            [
                IntegerParameter("cutoff", 1, 100),
                FloatParameter("weight", 0.0, 1.0),
                CategoricalParameter("algo", ["x", "y"]),
            ]
        )

    def test_duplicate_names_rejected(self):
        space = self._space()
        with pytest.raises(ValueError):
            space.add(IntegerParameter("cutoff", 0, 1))

    def test_names_in_insertion_order(self):
        assert self._space().names() == ["cutoff", "weight", "algo"]

    def test_sample_is_valid(self, rng):
        space = self._space()
        for _ in range(20):
            config = space.sample(rng)
            space.validate(config.as_dict())

    def test_default_configuration_is_valid(self):
        space = self._space()
        space.validate(space.default_configuration().as_dict())

    def test_validate_rejects_missing_and_extra(self):
        space = self._space()
        with pytest.raises(ValueError):
            space.validate({"cutoff": 5})
        complete = space.default_configuration().as_dict()
        complete["extra"] = 1
        with pytest.raises(ValueError):
            space.validate(complete)

    def test_validate_rejects_out_of_range(self):
        space = self._space()
        values = space.default_configuration().as_dict()
        values["cutoff"] = 1000
        with pytest.raises(ValueError):
            space.validate(values)


class TestConfiguration:
    def test_construction_validates_against_space(self):
        space = ConfigurationSpace([IntegerParameter("a", 0, 5)])
        with pytest.raises(ValueError):
            Configuration({"a": 99}, space=space)

    def test_getitem_and_get(self):
        config = Configuration({"a": 1, "b": "x"})
        assert config["a"] == 1
        assert config.get("missing", 7) == 7
        assert "b" in config

    def test_with_updates_returns_new_object(self):
        space = ConfigurationSpace([IntegerParameter("a", 0, 5)])
        config = Configuration({"a": 1}, space=space)
        updated = config.with_updates(a=3)
        assert updated["a"] == 3
        assert config["a"] == 1

    def test_equality_and_hash(self):
        first = Configuration({"a": 1, "b": (1, 2)})
        second = Configuration({"b": (1, 2), "a": 1})
        assert first == second
        assert hash(first) == hash(second)
        assert first != Configuration({"a": 2, "b": (1, 2)})

    def test_hash_handles_lists(self):
        config = Configuration({"a": [1, 2, 3]})
        assert isinstance(hash(config), int)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_sampled_configurations_always_validate(seed):
    """Property: sampling any number of times never produces an illegal config."""
    space = ConfigurationSpace(
        [
            IntegerParameter("i", 1, 1000, log_scale=True),
            FloatParameter("f", -5.0, 5.0),
            CategoricalParameter("c", ["a", "b", "c", "d"]),
        ]
    )
    sampler = random.Random(seed)
    config = space.sample(sampler)
    space.validate(config.as_dict())


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(1, 20))
def test_property_mutation_chain_stays_legal(seed, steps):
    """Property: repeated mutation of every parameter stays within the space."""
    space = ConfigurationSpace(
        [
            IntegerParameter("i", 1, 64),
            FloatParameter("f", 0.0, 1.0),
            CategoricalParameter("c", ["a", "b"]),
        ]
    )
    sampler = random.Random(seed)
    values = space.sample(sampler).as_dict()
    for _ in range(steps):
        for name in space.names():
            values[name] = space.get(name).mutate(values[name], sampler)
    space.validate(values)
