"""Tests for input-feature extractors and feature sets."""

import numpy as np
import pytest

from repro.lang.cost import charge
from repro.lang.features import (
    FeatureExtractor,
    FeatureSet,
    FeatureValue,
    parse_feature_name,
)


def mean_feature(data, fraction):
    """A toy extractor that charges proportionally to the fraction sampled."""
    sample_size = max(1, int(len(data) * fraction))
    charge(float(sample_size), "feature")
    return float(np.mean(data[:sample_size]))


class TestFeatureExtractor:
    def test_levels_produce_increasing_cost(self):
        extractor = FeatureExtractor("mean", mean_feature, levels=3)
        data = np.arange(1000, dtype=float)
        costs = [extractor.extract(data, level).cost for level in range(3)]
        assert costs[0] < costs[1] < costs[2]

    def test_feature_value_fields(self):
        extractor = FeatureExtractor("mean", mean_feature)
        value = extractor.extract(np.ones(10), 0)
        assert isinstance(value, FeatureValue)
        assert value.property_name == "mean"
        assert value.level == 0
        assert value.feature_name == "mean@0"
        assert value.value == pytest.approx(1.0)

    def test_invalid_level_rejected(self):
        extractor = FeatureExtractor("mean", mean_feature, levels=3)
        with pytest.raises(ValueError):
            extractor.extract(np.ones(4), 3)
        with pytest.raises(ValueError):
            extractor.extract(np.ones(4), -1)

    def test_feature_names(self):
        extractor = FeatureExtractor("mean", mean_feature, levels=2)
        assert extractor.feature_names() == ["mean@0", "mean@1"]

    def test_custom_level_fractions_validated(self):
        with pytest.raises(ValueError):
            FeatureExtractor("mean", mean_feature, levels=2, level_fractions=[0.5])
        with pytest.raises(ValueError):
            FeatureExtractor("mean", mean_feature, levels=2, level_fractions=[0.0, 1.0])

    def test_bad_constructor_arguments(self):
        with pytest.raises(ValueError):
            FeatureExtractor("", mean_feature)
        with pytest.raises(ValueError):
            FeatureExtractor("mean", mean_feature, levels=0)


class TestFeatureSet:
    def _feature_set(self):
        return FeatureSet(
            [
                FeatureExtractor("mean", mean_feature, levels=3),
                FeatureExtractor("max", lambda d, f: float(np.max(d)), levels=3),
            ]
        )

    def test_num_features_is_u_times_z(self):
        assert self._feature_set().num_features() == 6

    def test_feature_names_property_major(self):
        names = self._feature_set().feature_names()
        assert names == ["mean@0", "mean@1", "mean@2", "max@0", "max@1", "max@2"]

    def test_duplicate_property_rejected(self):
        features = self._feature_set()
        with pytest.raises(ValueError):
            features.add(FeatureExtractor("mean", mean_feature))

    def test_extract_vector_shapes(self):
        features = self._feature_set()
        values, costs = features.extract_vector(np.arange(100, dtype=float))
        assert values.shape == (6,)
        assert costs.shape == (6,)
        assert np.all(costs >= 0)

    def test_extract_subset_returns_only_requested(self):
        features = self._feature_set()
        values, cost = features.extract_subset(
            np.arange(100, dtype=float), ["mean@0", "max@2"]
        )
        assert set(values) == {"mean@0", "max@2"}
        assert cost >= 0

    def test_extract_subset_cost_less_than_full(self):
        features = self._feature_set()
        data = np.arange(1000, dtype=float)
        _, full_costs = features.extract_vector(data)
        _, subset_cost = features.extract_subset(data, ["mean@0"])
        assert subset_cost < full_costs.sum()

    def test_index_of(self):
        features = self._feature_set()
        assert features.index_of("max@1") == 4
        with pytest.raises(KeyError):
            features.index_of("nope@0")


class TestParseFeatureName:
    def test_round_trip(self):
        assert parse_feature_name("sortedness@2") == ("sortedness", 2)

    def test_property_with_at_sign(self):
        assert parse_feature_name("weird@name@1") == ("weird@name", 1)

    def test_malformed_names_rejected(self):
        with pytest.raises(ValueError):
            parse_feature_name("no_level")
        with pytest.raises(ValueError):
            parse_feature_name("prop@x")
