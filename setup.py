"""Legacy setup shim.

The offline build environment has no ``wheel`` package, so PEP-660 editable
installs (which build a wheel) fail; keeping a ``setup.py`` and omitting the
``[build-system]`` table lets ``pip install -e .`` use the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
