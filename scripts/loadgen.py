"""Train a selector, serve it, and measure it under synthetic load.

The command-line face of :mod:`repro.serving.loadgen`::

    PYTHONPATH=src python scripts/loadgen.py --test sort2 \
        --requests 64 --unique-inputs 8 --clients 4 \
        --output benchmarks/BENCH_serving.json

Trains the named test at a small scale, publishes the deployed selector on
an in-process :class:`~repro.serving.server.SelectorServer`, replays a
duplicate-heavy trace from concurrent client connections, and prints the
metrics dict (p50/p99 selection latency, throughput, coalescing counters)
as JSON.  ``benchmarks/BENCH_serving.json`` is this script's output,
committed as the serving perf baseline.

Exits non-zero if the trace executed more unique work than it contained --
the coalescing/recall guarantee the serving layer exists to provide.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.serving import ServingConfig, run_load


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--test", default="sort2", help="benchmark test to train and serve")
    parser.add_argument("--requests", type=int, default=64, help="total requests in the trace")
    parser.add_argument(
        "--unique-inputs", type=int, default=8,
        help="distinct input indices in the trace (the rest are duplicates)",
    )
    parser.add_argument("--clients", type=int, default=4, help="concurrent client connections")
    parser.add_argument("--seed", type=int, default=0, help="training and trace seed")
    parser.add_argument(
        "--input-seed", type=int, default=999,
        help="population seed of the served inputs (distinct from training's)",
    )
    parser.add_argument("--inputs", type=int, default=60, help="training inputs")
    parser.add_argument("--clusters", type=int, default=6, help="Level-1 clusters")
    parser.add_argument("--generations", type=int, default=3, help="autotuner generations")
    parser.add_argument(
        "--max-pending", type=int, default=64,
        help="admission cap on distinct in-flight executions",
    )
    parser.add_argument(
        "--execution-workers", type=int, default=1,
        help="server-side execution thread-pool width",
    )
    parser.add_argument("--output", default=None, help="also write the metrics JSON here")
    args = parser.parse_args(argv)

    print(f"# training {args.test} ...", file=sys.stderr)
    result = run_experiment(
        args.test,
        config=ExperimentConfig(
            n_inputs=args.inputs,
            n_clusters=args.clusters,
            tuner_generations=args.generations,
            seed=args.seed,
        ),
    )
    print(
        f"# replaying {args.requests} requests "
        f"({args.unique_inputs} unique) from {args.clients} client(s) ...",
        file=sys.stderr,
    )
    metrics = run_load(
        args.test,
        result.training.deployed,
        requests=args.requests,
        unique_inputs=args.unique_inputs,
        clients=args.clients,
        trace_seed=args.seed,
        input_seed=args.input_seed,
        config=ServingConfig(
            max_pending=args.max_pending,
            execution_workers=args.execution_workers,
        ),
    )

    report = json.dumps(metrics, indent=2, sort_keys=True)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"# wrote {args.output}", file=sys.stderr)

    if not metrics["each_unique_executed_at_most_once"]:
        print(
            f"# FAIL: {metrics['executions']} executions for "
            f"{metrics['unique_inputs']} unique inputs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
