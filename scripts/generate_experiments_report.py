"""Generate the measured numbers recorded in EXPERIMENTS.md.

Runs every Table-1 test once at a moderate scale, derives the Figure-6 and
Figure-8 series from the same trained systems, evaluates the Figure-7 model
curves, and runs the in-text ablations, then prints a markdown report to
stdout.  EXPERIMENTS.md embeds the output of::

    python scripts/generate_experiments_report.py > experiments_report.md
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.experiments.ablations import landmark_selection_ablation, relabel_shift
from repro.experiments.figure6 import distribution_from_result
from repro.experiments.figure7 import model_figure7b
from repro.experiments.figure8 import landmark_sweep
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.table1 import TABLE1_TESTS, format_table1, row_from_result, summarize_headline


def main() -> None:
    config = ExperimentConfig(
        n_inputs=240,
        n_clusters=12,
        tuner_generations=8,
        tuner_population=10,
        tuning_neighbors=4,
        max_subsets=128,
        seed=0,
    )
    start = time.time()
    results = {}
    rows = {}
    for test_name in TABLE1_TESTS:
        t0 = time.time()
        result = run_experiment(test_name, config=config)
        results[test_name] = result
        rows[test_name] = row_from_result(result)
        print(f"<!-- {test_name} finished in {time.time() - t0:.0f}s -->", file=sys.stderr)

    print("## Table 1 (measured)\n")
    print("```")
    print(format_table1(rows))
    print("```\n")
    headline = summarize_headline(rows)
    print(f"- best two-level speedup over the static oracle: **{headline['max_two_level_speedup']:.2f}x**")
    print(f"- worst one-level slowdown (with feature extraction): **{headline['max_one_level_slowdown']:.2f}x**")
    print(f"- largest two-level vs one-level ratio: **{headline['max_two_over_one_level']:.2f}x**")
    print(f"- two-level accuracy satisfaction per test: "
          + ", ".join(f"{name} {row.two_level_accuracy:.0%}" for name, row in rows.items()))
    print()

    print("## Figure 6 (per-input speedup distributions, measured)\n")
    print("| test | mean | median | p90 | max | share > 2x |")
    print("|---|---|---|---|---|---|")
    for test_name, result in results.items():
        panel = distribution_from_result(result)
        q50, q90 = np.quantile(panel.speedups, [0.5, 0.9])
        print(
            f"| {test_name} | {panel.mean:.2f}x | {q50:.2f}x | {q90:.2f}x | "
            f"{panel.maximum:.2f}x | {panel.tail_fraction(2.0):.1%} |"
        )
    print()

    print("## Figure 7b (model: fraction of full speedup vs landmarks)\n")
    curve = model_figure7b(range(10, 101, 10))
    print("| landmarks | " + " | ".join(str(int(k)) for k in curve.x) + " |")
    print("|---|" + "---|" * len(curve.x))
    print("| fraction | " + " | ".join(f"{v:.3f}" for v in curve.y) + " |")
    print()

    print("## Figure 8 (measured speedup vs number of landmarks, restricted dynamic oracle)\n")
    print("| test | " + " | ".join(["k=1", "k=2", "k=half", "k=all"]) + " |")
    print("|---|---|---|---|---|")
    for test_name, result in results.items():
        total = result.training.dataset.n_landmarks
        counts = sorted({1, 2, max(3, total // 2), total})
        points = landmark_sweep(result, landmark_counts=counts, n_subsets=25, seed=0)
        medians = {p.n_landmarks: p.median for p in points}
        ordered = [medians[c] for c in counts]
        while len(ordered) < 4:
            ordered.append(ordered[-1])
        print(f"| {test_name} | " + " | ".join(f"{m:.2f}x" for m in ordered[:4]) + " |")
    print()

    print("## In-text ablations (measured on sort2)\n")
    ablation = landmark_selection_ablation(results["sort2"], n_landmarks=5, seed=0)
    print(f"- k-means landmark selection (5 landmarks): **{ablation.kmeans_speedup:.2f}x** dynamic-oracle speedup")
    print(f"- uniformly random landmark selection (5 landmarks): **{ablation.random_speedup:.2f}x** "
          f"({ablation.degradation:.0%} degradation)")
    shifts = {name: relabel_shift(result) for name, result in results.items()}
    print("- fraction of inputs whose Level-2 label differs from their Level-1 cluster's landmark: "
          + ", ".join(f"{name} {shift:.0%}" for name, shift in shifts.items() if shift is not None))
    print()
    print(f"<!-- total generation time: {time.time() - start:.0f}s -->")


if __name__ == "__main__":
    main()
