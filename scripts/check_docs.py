"""Build/lint the documentation tree: markdown checks + link validation.

CI's docs job runs this over ``docs/`` and the top-level markdown files.
Checks, per file:

* **relative links resolve** -- every ``[text](target)`` whose target is
  not an absolute URL or a pure in-page anchor must point at an existing
  file (anchors on relative links are checked against the target file's
  headings);
* **in-page anchors resolve** against the file's own headings;
* **fenced code blocks are balanced** (an unclosed fence swallows the rest
  of the document silently on most renderers);
* **no empty link targets** like ``[text]()``.

Exit status 0 when clean, 1 with one line per problem otherwise::

    python scripts/check_docs.py            # checks docs/ + *.md at the root
    python scripts/check_docs.py README.md  # or an explicit file list
"""

from __future__ import annotations

import functools
import glob
import os
import re
import sys
from typing import List

#: ``[text](target)`` -- deliberately simple; nested brackets in link text
#: are not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]*)\)")

_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _github_anchor(heading: str) -> str:
    """GitHub's anchor slug for a heading (the subset our docs need)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)  # inline formatting
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code_blocks(lines: List[str]) -> List[str]:
    """Blank out fenced code blocks so links inside them are not checked."""
    stripped: List[str] = []
    in_fence = False
    for line in lines:
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            stripped.append("")
            continue
        stripped.append("" if in_fence else line)
    return stripped


@functools.lru_cache(maxsize=None)
def _anchors_of(path: str) -> set:
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    anchors = set()
    for line in _strip_code_blocks(lines):
        match = _HEADING.match(line)
        if match:
            anchors.add(_github_anchor(match.group(1)))
    return anchors


def check_file(path: str) -> List[str]:
    """All problems found in one markdown file."""
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        raw_lines = handle.read().splitlines()

    if sum(1 for line in raw_lines if line.lstrip().startswith("```")) % 2:
        problems.append(f"{path}: unbalanced fenced code block (odd number of ```)")

    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in enumerate(_strip_code_blocks(raw_lines), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target == "":
                problems.append(f"{path}:{lineno}: empty link target")
                continue
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
                continue
            if target.startswith("#"):
                if _github_anchor(target[1:]) not in _anchors_of(path):
                    problems.append(
                        f"{path}:{lineno}: in-page anchor {target!r} has no heading"
                    )
                continue
            file_part, _, anchor = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(
                    f"{path}:{lineno}: broken relative link {target!r} "
                    f"({resolved} does not exist)"
                )
                continue
            if anchor and resolved.endswith(".md"):
                if _github_anchor(anchor) not in _anchors_of(resolved):
                    problems.append(
                        f"{path}:{lineno}: anchor {('#' + anchor)!r} not found "
                        f"in {resolved}"
                    )
    return problems


def default_targets(root: str) -> List[str]:
    targets = sorted(glob.glob(os.path.join(root, "*.md")))
    targets += sorted(glob.glob(os.path.join(root, "docs", "**", "*.md"), recursive=True))
    return targets


def main(argv: List[str]) -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = argv or default_targets(root)
    problems: List[str] = []
    for path in targets:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(
        f"checked {len(targets)} markdown file(s): "
        + ("OK" if not problems else f"{len(problems)} problem(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
